//! One function per table/figure of the paper's evaluation (Section 5).
//! Each prints the rows/series the paper reports and saves them as CSV.

use crate::report::{f4, ratio, secs, Table};
use crate::runner::{
    run_cpu_parallel, run_gpu, run_gpu_parallel, run_gpu_profiled, run_plm, run_seq,
    run_seq_adaptive,
};
use cd_core::{GpuLouvainConfig, HashPlacement, ThreadAssignment, UpdateStrategy};
use cd_gpusim::Profile;
use cd_workloads::{by_name, BuiltWorkload, Scale, WorkloadSpec, SUITE};
use std::path::Path;

/// Workload subset used by the threshold sweep and comparison experiments
/// (one representative per family, to bound runtime).
fn comparison_subset() -> Vec<&'static WorkloadSpec> {
    ["orkut", "uk2002", "audikw", "nlpkkt", "rgg-sparse", "road-usa", "com-dblp", "copapers"]
        .iter()
        .map(|n| by_name(n).expect("workload"))
        .collect()
}

fn build(spec: &WorkloadSpec, scale: Scale) -> BuiltWorkload {
    // Route through the shared loader (the same path `repro serve` and the
    // service load generator use) so every consumer resolves names and
    // builds graphs identically.
    cd_workloads::load(spec.name, scale).expect("suite specs resolve by name")
}

/// The paper's adaptive switch sits at 100k vertices, *below every graph in
/// its collection* — i.e. every first stage ran under `th_bin`. Our
/// workloads are scaled down, so the limit scales with them to preserve that
/// regime (first stages coarse, contracted stages fine).
fn size_limit(scale: Scale) -> usize {
    1000 * scale.factor()
}

/// The paper-default GPU configuration with the scale-adjusted size limit.
fn gpu_cfg(scale: Scale) -> GpuLouvainConfig {
    let mut cfg = GpuLouvainConfig::paper_default();
    cfg.size_limit = size_limit(scale);
    cfg
}

/// Table 1: the workload collection with sequential and GPU running times.
pub fn table1(scale: Scale, out: &Path) {
    let mut t = Table::new(
        format!("Table 1 — graphs and running times (scale: {scale:?})"),
        &[
            "graph",
            "family",
            "|V|",
            "|E|",
            "seq[s]",
            "gpu-model[s]",
            "gpu-host[s]",
            "Q-seq",
            "Q-gpu",
            "speedup(model)",
        ],
    );
    let mut speedups = Vec::new();
    let mut rel_q = Vec::new();
    for spec in SUITE {
        let built = build(spec, scale);
        let g = &built.graph;
        let seq = run_seq(g);
        let gpu = run_gpu(g, &gpu_cfg(scale));
        let speedup = seq.total_time.as_secs_f64() / gpu.model_seconds;
        speedups.push(speedup);
        if seq.modularity > 0.0 {
            rel_q.push(gpu.result.modularity / seq.modularity);
        }
        t.row(vec![
            spec.name.to_string(),
            format!("{:?}", spec.family),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            secs(seq.total_time),
            format!("{:.4}", gpu.model_seconds),
            secs(gpu.host_time),
            f4(seq.modularity),
            f4(gpu.result.modularity),
            ratio(speedup),
        ]);
    }
    t.print();
    let gmean = geometric_mean(&speedups);
    let avg_rel = rel_q.iter().sum::<f64>() / rel_q.len() as f64;
    println!(
        "summary: speedup(model) min {} / geo-mean {} / max {}; avg Q(gpu)/Q(seq) = {:.3}",
        ratio(speedups.iter().copied().fold(f64::INFINITY, f64::min)),
        ratio(gmean),
        ratio(speedups.iter().copied().fold(0.0, f64::max)),
        avg_rel,
    );
    println!("paper: speedups 2.7x-312x (avg 41.7x) vs original sequential; modularity within 2%.");
    let _ = t.save_csv(out, "table1");
}

/// Figs. 1 & 2: modularity and speedup over the (th_bin, th_final) grid.
#[allow(clippy::needless_range_loop)] // triple grid indexed by (bin, final, graph)
pub fn fig1_2(scale: Scale, out: &Path) {
    let th_bins = [1e-1, 1e-2, 1e-3, 1e-4];
    let th_finals = [1e-3, 1e-4, 1e-5, 1e-6, 1e-7];
    let subset = comparison_subset();
    let builds: Vec<BuiltWorkload> = subset.iter().map(|s| build(s, scale)).collect();
    let seq_q: Vec<f64> = builds.iter().map(|b| run_seq(&b.graph).modularity).collect();

    // One run per (graph, config); collect modularity and model time.
    let mut q_grid = vec![vec![vec![0.0f64; builds.len()]; th_finals.len()]; th_bins.len()];
    let mut t_grid = vec![vec![vec![0.0f64; builds.len()]; th_finals.len()]; th_bins.len()];
    for (bi, &tb) in th_bins.iter().enumerate() {
        for (fi, &tf) in th_finals.iter().enumerate() {
            for (gi, b) in builds.iter().enumerate() {
                let run = run_gpu(&b.graph, &{
                    let mut c = GpuLouvainConfig::with_thresholds(tb, tf);
                    c.size_limit = size_limit(scale);
                    c
                });
                q_grid[bi][fi][gi] = run.result.modularity;
                t_grid[bi][fi][gi] = run.model_seconds;
            }
        }
    }

    // Fig. 1: average relative modularity per config.
    let mut t1 = Table::new(
        format!("Fig. 1 — avg modularity relative to sequential, % (scale: {scale:?})"),
        &[&"th_bin \\ th_final".to_string()]
            .into_iter()
            .map(|s| s.as_str())
            .chain(th_finals.iter().map(|f| leak(format!("{f:.0e}"))))
            .collect::<Vec<_>>(),
    );
    for (bi, &tb) in th_bins.iter().enumerate() {
        let mut row = vec![format!("{tb:.0e}")];
        for fi in 0..th_finals.len() {
            let avg: f64 =
                (0..builds.len()).map(|gi| q_grid[bi][fi][gi] / seq_q[gi].max(1e-12)).sum::<f64>()
                    / builds.len() as f64;
            row.push(format!("{:.2}", 100.0 * avg));
        }
        t1.row(row);
    }
    t1.print();
    println!("paper: never more than 2% below sequential; decreases as thresholds loosen.");
    let _ = t1.save_csv(out, "fig1_modularity_grid");

    // Fig. 2: speedup relative to the best configuration per graph.
    let mut best_t: Vec<f64> = vec![f64::INFINITY; builds.len()];
    for bi in 0..th_bins.len() {
        for fi in 0..th_finals.len() {
            for gi in 0..builds.len() {
                best_t[gi] = best_t[gi].min(t_grid[bi][fi][gi]);
            }
        }
    }
    let mut t2 = Table::new(
        format!("Fig. 2 — avg speedup relative to best config, % (scale: {scale:?})"),
        &[&"th_bin \\ th_final".to_string()]
            .into_iter()
            .map(|s| s.as_str())
            .chain(th_finals.iter().map(|f| leak(format!("{f:.0e}"))))
            .collect::<Vec<_>>(),
    );
    for (bi, &tb) in th_bins.iter().enumerate() {
        let mut row = vec![format!("{tb:.0e}")];
        for fi in 0..th_finals.len() {
            let avg: f64 = (0..builds.len()).map(|gi| best_t[gi] / t_grid[bi][fi][gi]).sum::<f64>()
                / builds.len() as f64;
            row.push(format!("{:.1}", 100.0 * avg));
        }
        t2.row(row);
    }
    t2.print();
    println!("paper: speedup critically depends on th_bin (higher = faster); chosen (1e-2, 1e-6) keeps >99% modularity at ~63% of best speedup.");
    let _ = t2.save_csv(out, "fig2_speedup_grid");
}

/// Figs. 3 & 4: GPU speedup vs the original and the adaptive sequential
/// algorithm.
pub fn fig3_4(scale: Scale, out: &Path) {
    let mut t = Table::new(
        format!("Figs. 3 & 4 — GPU speedup vs sequential variants (scale: {scale:?})"),
        &[
            "graph",
            "seq-orig[s]",
            "seq-adapt[s]",
            "gpu-model[s]",
            "fig3: vs orig",
            "fig4: vs adapt",
            "Q-orig",
            "Q-adapt",
            "Q-gpu",
        ],
    );
    let (mut s3, mut s4, mut adapt_speed, mut q_drop) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for spec in SUITE {
        let built = build(spec, scale);
        let g = &built.graph;
        let orig = run_seq(g);
        let adapt = run_seq_adaptive(g, size_limit(scale));
        let gpu = run_gpu(g, &gpu_cfg(scale));
        let sp3 = orig.total_time.as_secs_f64() / gpu.model_seconds;
        let sp4 = adapt.total_time.as_secs_f64() / gpu.model_seconds;
        s3.push(sp3);
        s4.push(sp4);
        adapt_speed.push(orig.total_time.as_secs_f64() / adapt.total_time.as_secs_f64().max(1e-12));
        if orig.modularity > 0.0 {
            q_drop.push(adapt.modularity / orig.modularity);
        }
        t.row(vec![
            spec.name.to_string(),
            secs(orig.total_time),
            secs(adapt.total_time),
            format!("{:.4}", gpu.model_seconds),
            ratio(sp3),
            ratio(sp4),
            f4(orig.modularity),
            f4(adapt.modularity),
            f4(gpu.result.modularity),
        ]);
    }
    t.print();
    println!(
        "summary: fig3 speedup geo-mean {} (paper: avg 41.7x, range 2.7-312x); fig4 geo-mean {} (paper: avg 6.7x, range 1-27x)",
        ratio(geometric_mean(&s3)),
        ratio(geometric_mean(&s4))
    );
    println!(
        "adaptive sequential vs original: geo-mean {} faster (paper: avg 7.3x), avg modularity ratio {:.4} (paper: -0.13%)",
        ratio(geometric_mean(&adapt_speed)),
        q_drop.iter().sum::<f64>() / q_drop.len() as f64
    );
    let _ = t.save_csv(out, "fig3_4_speedups");
}

/// Figs. 5 & 6: per-stage time breakdown on a road network and a KKT graph.
pub fn fig5_6(scale: Scale, out: &Path) {
    for (fig, name) in [("Fig. 5", "road-usa"), ("Fig. 6", "nlpkkt")] {
        let spec = by_name(name).unwrap();
        let built = build(spec, scale);
        let gpu = run_gpu(&built.graph, &gpu_cfg(scale));
        let mut t = Table::new(
            format!("{fig} — per-stage breakdown on {name} (scale: {scale:?})"),
            &["stage", "|V|", "arcs", "iters", "opt[s]", "agg[s]", "Q"],
        );
        for (i, s) in gpu.result.stages.iter().enumerate() {
            t.row(vec![
                (i + 1).to_string(),
                s.num_vertices.to_string(),
                s.num_arcs.to_string(),
                s.iterations.to_string(),
                secs(s.opt_time),
                secs(s.agg_time),
                f4(s.modularity),
            ]);
        }
        t.print();
        let opt: f64 = gpu.result.opt_time().as_secs_f64();
        let agg: f64 = gpu.result.agg_time().as_secs_f64();
        println!(
            "optimization/aggregation split: {:.0}% / {:.0}% (paper: ~70% / 30%)",
            100.0 * opt / (opt + agg),
            100.0 * agg / (opt + agg)
        );
        if name == "nlpkkt" {
            println!("paper: nlpkkt-style graphs stall for a few stages before the graph collapses (weak initial community structure).");
        } else {
            println!("paper: typical profile — expensive first stage, long cheap tail.");
        }
        let _ = t.save_csv(out, &format!("fig5_6_{name}"));
    }
}

/// Fig. 7: GPU vs the fine-grained CPU-parallel (OpenMP-style) baseline,
/// plus the first-iteration hashing-rate comparison.
pub fn fig7(scale: Scale, out: &Path) {
    let mut t = Table::new(
        format!("Fig. 7 — GPU vs CPU-parallel Louvain (scale: {scale:?})"),
        &["graph", "cpu-par[s]", "gpu-model[s]", "speedup", "Q-cpu", "Q-gpu", "hash-rate ratio"],
    );
    let mut speeds = Vec::new();
    let mut hash_ratios = Vec::new();
    for spec in SUITE {
        let built = build(spec, scale);
        let g = &built.graph;
        let cpu = run_cpu_parallel(g);
        let gpu = run_gpu(g, &gpu_cfg(scale));
        let sp = cpu.total_time.as_secs_f64() / gpu.model_seconds;
        speeds.push(sp);
        // First-iteration hashing rate: both algorithms hash all 2|E| edges
        // once in their first sweep.
        let cpu_first =
            cpu.stages.first().map(|s| s.opt_time.as_secs_f64() / s.iterations.max(1) as f64);
        let gpu_first =
            gpu.result.stages.first().and_then(|s| s.iter_times.first()).map(|d| d.as_secs_f64());
        let gpu_first_model =
            gpu_first.map(|h| h / gpu.host_time.as_secs_f64().max(1e-12) * gpu.model_seconds);
        let hr = match (cpu_first, gpu_first_model) {
            (Some(c), Some(gm)) if gm > 0.0 => c / gm,
            _ => f64::NAN,
        };
        if hr.is_finite() {
            hash_ratios.push(hr);
        }
        t.row(vec![
            spec.name.to_string(),
            secs(cpu.total_time),
            format!("{:.4}", gpu.model_seconds),
            ratio(sp),
            f4(cpu.modularity),
            f4(gpu.result.modularity),
            if hr.is_finite() { ratio(hr) } else { "-".into() },
        ]);
    }
    t.print();
    println!(
        "summary: speedup geo-mean {} (paper: avg 6.1x, range 1.1-27x); first-iteration hashing geo-mean {} faster (paper: ~9x)",
        ratio(geometric_mean(&speeds)),
        ratio(geometric_mean(&hash_ratios)),
    );
    let _ = t.save_csv(out, "fig7_vs_openmp");
}

/// Section 5 text: the relaxed-update experiment.
pub fn relaxed(scale: Scale, out: &Path) {
    let subset = comparison_subset();
    let mut t = Table::new(
        format!("Relaxed vs per-bucket updates (scale: {scale:?})"),
        &[
            "graph",
            "Q-bucket",
            "Q-relaxed",
            "Q ratio",
            "t-bucket(model)",
            "t-relaxed(model)",
            "slowdown",
            "stages b/r",
        ],
    );
    let mut ratios = Vec::new();
    for spec in subset {
        let built = build(spec, scale);
        let g = &built.graph;
        let bucketed = run_gpu(g, &gpu_cfg(scale));
        let mut cfg = gpu_cfg(scale);
        cfg.update_strategy = UpdateStrategy::Relaxed;
        let relaxed = run_gpu(g, &cfg);
        let qr = relaxed.result.modularity / bucketed.result.modularity.max(1e-12);
        ratios.push(qr);
        t.row(vec![
            spec.name.to_string(),
            f4(bucketed.result.modularity),
            f4(relaxed.result.modularity),
            format!("{qr:.4}"),
            format!("{:.4}", bucketed.model_seconds),
            format!("{:.4}", relaxed.model_seconds),
            ratio(relaxed.model_seconds / bucketed.model_seconds.max(1e-12)),
            format!("{}/{}", bucketed.result.stages.len(), relaxed.result.stages.len()),
        ]);
    }
    t.print();
    println!(
        "avg modularity ratio relaxed/bucketed: {:.4} (paper: difference < 0.13%; relaxed sometimes up to 10x slower)",
        ratios.iter().sum::<f64>() / ratios.len() as f64
    );
    let _ = t.save_csv(out, "relaxed_updates");
}

/// Section 5 text: comparison with PLM on the four common graphs.
pub fn plm(scale: Scale, out: &Path) {
    let names = ["copapers", "livejournal", "europe-osm", "uk2002"];
    let mut t = Table::new(
        format!("PLM comparison (paper: coPapersDBLP, soc-LiveJournal1, europe_osm, uk-2002; scale: {scale:?})"),
        &["graph", "plm[s]", "gpu-model[s]", "speedup", "Q-plm", "Q-gpu"],
    );
    let mut speeds = Vec::new();
    let mut qs = Vec::new();
    for name in names {
        let spec = by_name(name).unwrap();
        let built = build(spec, scale);
        let g = &built.graph;
        let plm = run_plm(g);
        let gpu = run_gpu(g, &gpu_cfg(scale));
        let sp = plm.total_time.as_secs_f64() / gpu.model_seconds;
        speeds.push(sp);
        if plm.modularity > 0.0 {
            qs.push(gpu.result.modularity / plm.modularity);
        }
        t.row(vec![
            name.to_string(),
            secs(plm.total_time),
            format!("{:.4}", gpu.model_seconds),
            ratio(sp),
            f4(plm.modularity),
            f4(gpu.result.modularity),
        ]);
    }
    t.print();
    println!(
        "summary: geo-mean speedup {} (paper: 1.3-4.6x, avg 2.7x); avg modularity ratio {:.4} (paper: <0.2% apart)",
        ratio(geometric_mean(&speeds)),
        qs.iter().sum::<f64>() / qs.len() as f64
    );
    let _ = t.save_csv(out, "plm_comparison");
}

/// Section 5 text: TEPS rates of the first modularity-optimization iteration.
pub fn teps(scale: Scale, out: &Path) {
    let mut t = Table::new(
        format!("TEPS — first-iteration edge-hashing rate (scale: {scale:?})"),
        &["graph", "arcs", "model GTEPS"],
    );
    let mut best = (0.0f64, "");
    for spec in SUITE {
        let built = build(spec, scale);
        let gpu = run_gpu(&built.graph, &gpu_cfg(scale));
        let gteps = gpu.model_teps() / 1e9;
        if gteps > best.0 {
            best = (gteps, spec.name);
        }
        t.row(vec![
            spec.name.to_string(),
            built.graph.num_arcs().to_string(),
            format!("{gteps:.4}"),
        ]);
    }
    t.print();
    println!(
        "max model rate: {:.3} GTEPS on {} (paper: 0.225 GTEPS on channel-500; Blue Gene/Q with 524,288 threads: 1.54 GTEPS, <7x higher)",
        best.0, best.1
    );
    let _ = t.save_csv(out, "teps");
}

/// Section 5 text: hardware-utilization profile (active lanes per warp).
pub fn profile(scale: Scale, out: &Path) {
    let spec = by_name("uk2002").unwrap();
    let built = build(spec, scale);
    let gpu = run_gpu(&built.graph, &gpu_cfg(scale));
    let mut t = Table::new(
        format!("Profile — kernel utilization on uk2002 analogue (scale: {scale:?})"),
        &[
            "kernel",
            "launches",
            "blocks",
            "active-lane %",
            "occupancy %",
            "eligible warps",
            "atomics",
            "global txns",
        ],
    );
    let dev_cfg = &gpu.device_config;
    for (name, k) in gpu.metrics.kernels() {
        if k.counters.lane_slots == 0 {
            continue;
        }
        t.row(vec![
            name.clone(),
            k.launches.to_string(),
            k.blocks.to_string(),
            format!("{:.1}", 100.0 * k.active_lane_fraction()),
            format!("{:.0}", 100.0 * k.occupancy(dev_cfg)),
            format!("{:.1}", k.eligible_warps_per_scheduler(dev_cfg)),
            (k.counters.atomic_adds + k.counters.cas_ops).to_string(),
            k.counters.global_transactions.to_string(),
        ]);
    }
    t.print();
    let total = gpu.metrics.total();
    // Work-weighted eligible-warps average over the computeMove kernels (the
    // paper's 3.4 figure is measured over the whole run on uk-2002).
    let (mut weighted, mut weight) = (0.0, 0.0);
    for (name, k) in gpu.metrics.kernels() {
        if name.starts_with("compute_move") && k.counters.lane_slots > 0 {
            let w = k.counters.lane_slots as f64;
            weighted += w * k.eligible_warps_per_scheduler(dev_cfg);
            weight += w;
        }
    }
    println!(
        "overall active-lane fraction: {:.1}% (paper reports 62.5% on uk-2002; the simulator's strided model is an upper bound — it does not model intra-probe divergence)",
        100.0 * total.active_lane_fraction()
    );
    if weight > 0.0 {
        println!(
            "work-weighted eligible warps/scheduler in computeMove: {:.1} (paper: 3.4; ours is the occupancy-based upper bound)",
            weighted / weight
        );
    }
    let _ = t.save_csv(out, "profile_uk2002");
}

/// Ablations: degree-binned vs node-centric assignment and shared vs global
/// hash placement (the design choices Section 4.1 motivates).
pub fn ablation(scale: Scale, out: &Path) {
    let names = ["orkut", "uk2002", "hollywood", "road-usa"];
    let mut t = Table::new(
        format!("Ablation — thread assignment, hash placement, pruning (scale: {scale:?})"),
        &[
            "graph",
            "binned[s]",
            "node-centric[s]",
            "nc slowdown",
            "nc active %",
            "global-hash[s]",
            "gh slowdown",
            "pruned[s]",
            "pruning speedup",
            "pruned Q ratio",
        ],
    );
    for name in names {
        let spec = by_name(name).unwrap();
        let built = build(spec, scale);
        let g = &built.graph;
        let binned = run_gpu(g, &gpu_cfg(scale));

        let mut nc_cfg = gpu_cfg(scale);
        nc_cfg.assignment = ThreadAssignment::NodeCentric;
        let nc = run_gpu(g, &nc_cfg);
        let nc_active = nc
            .metrics
            .kernel("compute_move_node_centric")
            .map(|k| 100.0 * k.active_lane_fraction())
            .unwrap_or(0.0);

        let mut gh_cfg = gpu_cfg(scale);
        gh_cfg.hash_placement = HashPlacement::ForceGlobal;
        let gh = run_gpu(g, &gh_cfg);

        let mut pr_cfg = gpu_cfg(scale);
        pr_cfg.pruning = true;
        let pr = run_gpu(g, &pr_cfg);

        t.row(vec![
            name.to_string(),
            format!("{:.4}", binned.model_seconds),
            format!("{:.4}", nc.model_seconds),
            ratio(nc.model_seconds / binned.model_seconds.max(1e-12)),
            format!("{nc_active:.1}"),
            format!("{:.4}", gh.model_seconds),
            ratio(gh.model_seconds / binned.model_seconds.max(1e-12)),
            format!("{:.4}", pr.model_seconds),
            ratio(binned.model_seconds / pr.model_seconds.max(1e-12)),
            format!("{:.4}", pr.result.modularity / binned.result.modularity.max(1e-12)),
        ]);
    }
    t.print();
    println!("expected: node-centric loses most on heavy-tailed graphs (low active-lane %); global hashing costs a constant factor everywhere (shared memory ~ L1 speed, per the paper); pruning (extension) trims late-iteration work at ~equal quality.");
    let _ = t.save_csv(out, "ablation");
}

/// Section 4.1 motivation data: the degree-bucket census of every workload —
/// how many vertices (and edges) each of the seven `computeMove` buckets
/// receives, i.e. why one thread-group width cannot fit all graphs.
pub fn buckets(scale: Scale, out: &Path) {
    use cd_graph::bucket_of_degree;
    let mut t = Table::new(
        format!("Degree-bucket census (scale: {scale:?})"),
        &[
            "graph",
            "b1[1-4]",
            "b2[5-8]",
            "b3[9-16]",
            "b4[17-32]",
            "b5[33-84]",
            "b6[85-319]",
            "b7[320+]",
            "edge share b5-7 %",
        ],
    );
    for spec in SUITE {
        let built = build(spec, scale);
        let g = &built.graph;
        let mut verts = [0usize; 7];
        let mut edges = [0usize; 7];
        for v in 0..g.num_vertices() as u32 {
            let d = g.degree(v);
            if d == 0 {
                continue;
            }
            let b = bucket_of_degree(d);
            verts[b] += 1;
            edges[b] += d;
        }
        let total_edges: usize = edges.iter().sum();
        let heavy_share = if total_edges == 0 {
            0.0
        } else {
            100.0 * (edges[4] + edges[5] + edges[6]) as f64 / total_edges as f64
        };
        let mut row = vec![spec.name.to_string()];
        row.extend(verts.iter().map(|v| v.to_string()));
        row.push(format!("{heavy_share:.1}"));
        t.row(row);
    }
    t.print();
    println!("the paper's load-balance argument: on heavy-tailed graphs most vertices sit in the subwarp buckets while a large share of *edges* belongs to the warp/block buckets — one thread per vertex starves either side.");
    let _ = t.save_csv(out, "buckets");
}

/// Extension (paper Section 6): the single-GPU algorithm as a building block
/// for coarse-grained multi-device Louvain. Reproduces the up-to-9%
/// modularity loss the paper's related-work section attributes to the
/// multi-GPU scheme of Cheong et al.
pub fn multigpu(scale: Scale, out: &Path) {
    use cd_core::{louvain_multi_gpu, MultiGpuConfig};
    let names = ["orkut", "com-dblp", "road-usa"];
    let mut t = Table::new(
        format!("Extension — coarse-grained multi-device Louvain (scale: {scale:?})"),
        &["graph", "devices", "Q", "Q vs 1-device", "cut weight %", "merged |V|"],
    );
    for name in names {
        let built = build(by_name(name).unwrap(), scale);
        let g = &built.graph;
        let mut base_q = 0.0;
        for d in [1usize, 2, 4, 8] {
            let mut cfg = MultiGpuConfig::k40m(d);
            cfg.gpu = gpu_cfg(scale);
            let res = louvain_multi_gpu(g, &cfg).expect("multi-gpu run");
            if d == 1 {
                base_q = res.modularity;
            }
            t.row(vec![
                name.to_string(),
                d.to_string(),
                f4(res.modularity),
                format!("{:.2}%", 100.0 * res.modularity / base_q.max(1e-12)),
                // Each cut edge is seen from both sides, so halve the sum.
                format!("{:.2}", 100.0 * (res.cut_weight * 0.5) / g.total_weight_m()),
                res.merged_vertices.to_string(),
            ]);
        }
    }
    t.print();
    println!("paper (related work, Cheong et al. multi-GPU): up to 9% modularity loss from partition-blind local phases.");
    println!("note: loss tracks the cut fraction — orkut's LFR stand-in shuffles vertex ids (worst case for block partitioning), road/planted graphs keep locality (mild loss, as on real collections).");
    let _ = t.save_csv(out, "multigpu");
}

/// Extension (paper Section 6): "even more threshold values for varying
/// sizes of graphs" — a geometric multi-level schedule against the paper's
/// two-level scheme.
pub fn schedule(scale: Scale, out: &Path) {
    use cd_core::{louvain_gpu_with_schedule, ThresholdSchedule};
    use cd_gpusim::{Device, DeviceConfig};
    let subset = comparison_subset();
    let mut t = Table::new(
        format!("Extension — multi-level threshold schedules (scale: {scale:?})"),
        &["graph", "Q 2-level", "Q 4-level", "t 2-level(model)", "t 4-level(model)", "time ratio"],
    );
    for spec in subset {
        let built = build(spec, scale);
        let g = &built.graph;
        let cfg = gpu_cfg(scale);
        let limit = size_limit(scale);
        let run = |sched: &ThresholdSchedule| {
            let dev = Device::new(DeviceConfig::tesla_k40m());
            let res = louvain_gpu_with_schedule(&dev, g, &cfg, sched).unwrap();
            let m = dev.metrics();
            let model = dev.config().cycles_to_seconds(m.total_model_cycles(dev.config()));
            (res.modularity, model)
        };
        let two = run(&ThresholdSchedule::two_level(cfg.threshold_bin, cfg.threshold_final, limit));
        let four =
            run(&ThresholdSchedule::geometric(cfg.threshold_bin, cfg.threshold_final, limit, 3));
        t.row(vec![
            spec.name.to_string(),
            f4(two.0),
            f4(four.0),
            format!("{:.4}", two.1),
            format!("{:.4}", four.1),
            ratio(four.1 / two.1.max(1e-12)),
        ]);
    }
    t.print();
    println!("paper: suggests graded thresholds as future work; expected shape — similar quality, smoother time/quality trade.");
    let _ = t.save_csv(out, "schedule");
}

/// Extension (robustness): deterministic fault injection. Sweeps per-launch
/// abort / stuck-block / bit-flip rates on single-device runs under the
/// driver's stage-retry recovery, then exercises multi-device failover down
/// to the sequential baseline.
pub fn faults(scale: Scale, out: &Path) {
    use cd_core::{louvain_gpu, louvain_multi_gpu, MultiGpuConfig, RecoveryAction};
    use cd_gpusim::{Device, DeviceConfig, FaultPlan};

    let names = ["com-dblp", "road-usa", "rgg-sparse"];
    // (abort, stuck, bit-flip) per-launch rates. A stage retries as a unit,
    // so even sub-percent rates translate into frequent stage-level retries.
    // Bit-flip rates are per *word*, and label/weight buffers hold one word
    // per vertex — keep them an order of magnitude below the launch rates or
    // every retry of a large stage redraws a corrupted buffer.
    let tiers: [(f64, f64, f64); 4] = [
        (0.0, 0.0, 0.0),
        (0.0005, 0.00025, 0.00001),
        (0.002, 0.001, 0.00005),
        (0.005, 0.0025, 0.0001),
    ];
    let mut t = Table::new(
        format!("Fault injection — recovery under per-launch faults (scale: {scale:?})"),
        &[
            "graph",
            "abort",
            "stuck",
            "flip",
            "injected",
            "detected",
            "recovered",
            "status",
            "Q/Q-clean",
            "model-t/t-clean",
        ],
    );
    for name in names {
        let built = build(by_name(name).unwrap(), scale);
        let g = &built.graph;
        let mut cfg = gpu_cfg(scale);
        cfg.retry.max_attempts = 10;
        let mut clean = (1.0f64, 1.0f64); // (Q, model seconds) of the fault-free tier
        for (ti, &(abort, stuck, flip)) in tiers.iter().enumerate() {
            let plan = FaultPlan::seeded(2017)
                .with_abort_rate(abort)
                .with_stuck_rate(stuck)
                .with_bitflip_rate(flip);
            // Fault injection lives in the instrumented launch path; pin the
            // profile so the sweep works regardless of the env default.
            let dev_cfg = DeviceConfig::tesla_k40m()
                .with_profile(Profile::Instrumented)
                .with_fault_plan(plan);
            let dev = Device::new(dev_cfg.clone());
            let res = louvain_gpu(&dev, g, &cfg);
            let stats = dev.fault_stats();
            let model = dev_cfg.cycles_to_seconds(dev.metrics().total_model_cycles(&dev_cfg));
            let (status, q) = match &res {
                Ok(r) => ("ok".to_string(), r.modularity),
                Err(e) => (format!("failed: {e}"), f64::NAN),
            };
            if ti == 0 {
                clean = (q, model.max(1e-12));
            }
            t.row(vec![
                name.to_string(),
                format!("{abort:.1e}"),
                format!("{stuck:.1e}"),
                format!("{flip:.1e}"),
                stats.injected().to_string(),
                stats.detected.to_string(),
                stats.recovered.to_string(),
                status,
                if q.is_finite() { format!("{:.4}", q / clean.0.max(1e-12)) } else { "-".into() },
                format!("{:.3}", model / clean.1),
            ]);
        }
    }
    t.print();
    println!("expected: recovered runs stay within a few % of fault-free modularity; model-time overhead grows with the stage-retry count.");
    let _ = t.save_csv(out, "faults_single");

    let mut t2 = Table::new(
        format!("Fault injection — multi-device failover (scale: {scale:?})"),
        &["graph", "devices", "plan", "status", "Q", "local-retries", "failovers", "seq-fallbacks"],
    );
    let built = build(by_name("com-dblp").unwrap(), scale);
    let g = &built.graph;
    let plans = [
        ("clean", FaultPlan::seeded(7), 10usize),
        ("transient", FaultPlan::seeded(7).with_abort_rate(0.002).with_stuck_rate(0.001), 10),
        // Every launch aborts: all devices fail and the run must degrade to
        // the sequential baseline. A small retry budget keeps this fast.
        ("hopeless", FaultPlan::seeded(7).with_abort_rate(1.0), 2),
    ];
    for (label, plan, attempts) in plans {
        let mut cfg = MultiGpuConfig::k40m(4);
        cfg.gpu = gpu_cfg(scale);
        cfg.gpu.retry.max_attempts = attempts;
        cfg.device = cfg.device.with_profile(Profile::Instrumented).with_fault_plan(plan);
        match louvain_multi_gpu(g, &cfg) {
            Ok(res) => {
                let count = |f: fn(&RecoveryAction) -> bool| {
                    res.recovery.iter().filter(|a| f(a)).count().to_string()
                };
                t2.row(vec![
                    "com-dblp".into(),
                    "4".into(),
                    label.into(),
                    "ok".into(),
                    f4(res.modularity),
                    count(|a| matches!(a, RecoveryAction::LocalRetry { .. })),
                    count(|a| matches!(a, RecoveryAction::Failover { .. })),
                    count(|a| matches!(a, RecoveryAction::SequentialFallback { .. })),
                ]);
            }
            Err(e) => t2.row(vec![
                "com-dblp".into(),
                "4".into(),
                label.into(),
                format!("failed: {e}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t2.print();
    println!("expected: transient faults heal via retry/failover; a hopeless fleet still completes through the sequential fallback.");
    let _ = t2.save_csv(out, "faults_multi");
}

/// Seed-commit opt-phase baselines at `Scale::Medium` on the CI reference
/// machine, captured before the frontier-compacted-binning / incremental-
/// modularity rewrite: `(graph, pruning) -> (opt wall seconds, modularity)`.
/// Opt seconds use the *fastest* of the recorded seed runs, so the speedups
/// reported against them are conservative.
const OPT_SEED_BASELINE: [(&str, bool, f64, f64); 6] = [
    ("road-usa", true, 0.2307, 0.971824739842166),
    ("com-dblp", true, 0.2635, 0.777420695201181),
    ("uk2002", true, 0.4825, 0.790712895127409),
    ("road-usa", false, 0.2183, 0.971467410802857),
    ("com-dblp", false, 0.2766, 0.777546390043285),
    ("uk2002", false, 0.5646, 0.783957687851855),
];

/// Perf snapshot of the modularity-optimization hot loop: wall time,
/// launch/transaction counts and buffer-pool efficiency on a small fixed
/// workload set, written as `BENCH_opt.json` (committed baseline at
/// `Scale::Medium`, regenerated as a CI artifact on every push).
pub fn opt_snapshot(scale: Scale, out: &Path) {
    let names = ["road-usa", "com-dblp", "uk2002"];
    let mut t = Table::new(
        format!("Opt-loop perf snapshot (scale: {scale:?})"),
        &[
            "graph",
            "pruning",
            "opt[s]",
            "iters",
            "ms/iter",
            "launches",
            "copy_if",
            "global txns",
            "pool hit %",
            "Q",
            "opt speedup vs seed",
        ],
    );
    let mut entries = String::new();
    let mut speedups = Vec::new();
    let mut max_drift = 0.0f64;
    for name in names {
        let built = build(by_name(name).unwrap(), scale);
        let g = &built.graph;
        for pruning in [true, false] {
            let mut cfg = gpu_cfg(scale);
            cfg.pruning = pruning;
            // Best of three: the recorded seed baseline is also the fastest
            // of its runs, so the speedup compares like statistics (single
            // samples on a shared host are ±30% noise). Pinned instrumented:
            // the launch/transaction/pool columns are instrumentation.
            let run = (0..3)
                .map(|_| run_gpu_profiled(g, &cfg, Profile::Instrumented))
                .min_by_key(|r| r.result.opt_time())
                .unwrap();
            let opt_s = run.result.opt_time().as_secs_f64();
            let iters: usize = run.result.stages.iter().map(|s| s.iterations).sum();
            let iter_ms: Vec<f64> = run
                .result
                .stages
                .iter()
                .flat_map(|s| s.iter_times.iter().map(|d| d.as_secs_f64() * 1e3))
                .collect();
            let launches: u64 = run.metrics.kernels().iter().map(|(_, k)| k.launches).sum();
            let copy_if = run.metrics.kernel("thrust::copy_if").map(|k| k.launches).unwrap_or(0);
            let gtx = run.metrics.total().counters.global_transactions;
            let pool = *run.metrics.pool();
            let q = run.result.modularity;

            // Compare with the recorded seed-commit baseline where one exists
            // (medium scale only — the scale the acceptance gate runs at).
            let baseline = (scale == Scale::Medium)
                .then(|| OPT_SEED_BASELINE.iter().find(|b| b.0 == name && b.1 == pruning))
                .flatten();
            let speedup = baseline.map(|b| b.2 / opt_s.max(1e-12));
            let drift = baseline.map(|b| (q - b.3).abs());
            if let Some(s) = speedup {
                speedups.push(s);
            }
            if let Some(d) = drift {
                max_drift = max_drift.max(d);
            }

            t.row(vec![
                name.to_string(),
                pruning.to_string(),
                format!("{opt_s:.4}"),
                iters.to_string(),
                format!("{:.3}", opt_s * 1e3 / iters.max(1) as f64),
                launches.to_string(),
                copy_if.to_string(),
                gtx.to_string(),
                format!("{:.1}", 100.0 * pool.hit_rate()),
                format!("{q:.12}"),
                speedup.map_or("-".into(), ratio),
            ]);

            if !entries.is_empty() {
                entries.push(',');
            }
            entries.push_str(&format!(
                "\n    {{\n      \"graph\": \"{name}\",\n      \"pruning\": {pruning},\n      \
                 \"vertices\": {nv},\n      \"arcs\": {na},\n      \"opt_seconds\": {opt_s:.6},\n      \
                 \"iterations\": {iters},\n      \"iter_ms\": [{iter_ms}],\n      \
                 \"kernel_launches\": {launches},\n      \"copy_if_launches\": {copy_if},\n      \
                 \"global_transactions\": {gtx},\n      \"pool_hit_rate\": {hit:.6},\n      \
                 \"pool_bytes_recycled\": {recycled},\n      \"modularity\": {q:.15}{base}\n    }}",
                nv = g.num_vertices(),
                na = g.num_arcs(),
                iter_ms = iter_ms.iter().map(|m| format!("{m:.4}")).collect::<Vec<_>>().join(","),
                hit = pool.hit_rate(),
                recycled = pool.bytes_recycled,
                base = baseline.map_or(String::new(), |b| format!(
                    ",\n      \"seed_opt_seconds\": {:.6},\n      \"seed_modularity\": {:.15},\n      \
                     \"opt_speedup\": {:.4},\n      \"modularity_drift\": {:.3e}",
                    b.2,
                    b.3,
                    b.2 / opt_s.max(1e-12),
                    (q - b.3).abs()
                )),
            ));
        }
    }
    t.print();
    let summary = if speedups.is_empty() {
        String::new()
    } else {
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "opt-phase speedup vs seed commit: min {} / geo-mean {}; max |ΔQ| = {max_drift:.3e} (gate: ≥1.5x and ≤1e-9)",
            ratio(min),
            ratio(geometric_mean(&speedups)),
        );
        format!(
            ",\n  \"summary\": {{\n    \"min_opt_speedup\": {min:.4},\n    \
             \"geo_mean_opt_speedup\": {:.4},\n    \"max_modularity_drift\": {max_drift:.3e}\n  }}",
            geometric_mean(&speedups)
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"opt_snapshot\",\n  \"scale\": \"{scale:?}\",\n  \
         \"device\": \"tesla_k40m\",\n  \"profile\": \"{}\",\n  \"workloads\": [{entries}\n  ]{summary}\n}}\n",
        Profile::Instrumented
    );
    std::fs::create_dir_all(out).ok();
    let path = out.join("BENCH_opt.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Execution-backend comparison: the same workloads under the
/// `Instrumented`, `Fast`, and native-`Parallel` (at 1 thread and at the
/// host's core count) execution profiles. All four runs must agree
/// bit-for-bit on labels and modularity — the profiles differ only in what
/// they *record* and *where blocks run* — and the process exits nonzero if
/// they do not, which is the CI divergence gate. The payoff is opt-phase
/// wall time, written as `BENCH_backend.json` (committed baseline at
/// `Scale::Medium`, regenerated as a CI artifact).
pub fn backend_snapshot(scale: Scale, out: &Path) {
    let names = ["road-usa", "com-dblp", "uk2002"];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // On a single-core host the many-thread leg still runs (oversubscribed)
    // to exercise the pool path; its speedup is then a scheduling-overhead
    // measurement, not a parallelism one, and the JSON records `host_cores`
    // so readers can tell which they are looking at.
    let par_n = cores.max(2);
    let mut t = Table::new(
        format!(
            "Execution backends — opt wall time, instrumented vs fast vs parallel \
             (scale: {scale:?}, host cores: {cores})"
        ),
        &[
            "graph",
            "pruning",
            "instr[s]",
            "fast[s]",
            "par@1[s]",
            &format!("par@{par_n}[s]"),
            "par@1/fast",
            &format!("par@{par_n}/fast"),
            "Q",
            "labels",
        ],
    );
    let mut entries = String::new();
    let mut fast_speedups = Vec::new();
    let mut par1_speedups = Vec::new();
    let mut parn_speedups = Vec::new();
    let mut max_drift = 0.0f64;
    let mut all_identical = true;
    for name in names {
        let built = build(by_name(name).unwrap(), scale);
        let g = &built.graph;
        for pruning in [true, false] {
            let mut cfg = gpu_cfg(scale);
            cfg.pruning = pruning;
            // Best of three per backend, with the repetitions interleaved
            // (I,F,P1,PN, I,F,P1,PN, ...) so slow ambient drift on the host
            // lands on every backend equally instead of biasing whichever
            // ran last.
            let mut instr: Option<crate::runner::GpuRun> = None;
            let mut fast: Option<crate::runner::GpuRun> = None;
            let mut par1: Option<crate::runner::GpuRun> = None;
            let mut parn: Option<crate::runner::GpuRun> = None;
            for _ in 0..3 {
                for (run, best) in [
                    (run_gpu_profiled(g, &cfg, Profile::Instrumented), &mut instr),
                    (run_gpu_profiled(g, &cfg, Profile::Fast), &mut fast),
                    (run_gpu_parallel(g, &cfg, 1), &mut par1),
                    (run_gpu_parallel(g, &cfg, par_n), &mut parn),
                ] {
                    if best.as_ref().is_none_or(|b| run.opt_wall() < b.opt_wall()) {
                        *best = Some(run);
                    }
                }
            }
            let (instr, fast) = (instr.unwrap(), fast.unwrap());
            let (par1, parn) = (par1.unwrap(), parn.unwrap());
            let instr_s = instr.opt_wall().as_secs_f64();
            let fast_s = fast.opt_wall().as_secs_f64();
            let par1_s = par1.opt_wall().as_secs_f64();
            let parn_s = parn.opt_wall().as_secs_f64();
            let fast_speedup = instr_s / fast_s.max(1e-12);
            let par1_vs_fast = fast_s / par1_s.max(1e-12);
            let parn_vs_fast = fast_s / parn_s.max(1e-12);
            fast_speedups.push(fast_speedup);
            par1_speedups.push(par1_vs_fast);
            parn_speedups.push(parn_vs_fast);
            let refq = instr.result.modularity;
            let drift = [&fast, &par1, &parn]
                .iter()
                .map(|r| (refq - r.result.modularity).abs())
                .fold(0.0f64, f64::max);
            max_drift = max_drift.max(drift);
            let labels_identical = [&fast, &par1, &parn]
                .iter()
                .all(|r| r.result.partition.as_slice() == instr.result.partition.as_slice());
            all_identical &= labels_identical && drift == 0.0;
            t.row(vec![
                name.to_string(),
                pruning.to_string(),
                format!("{instr_s:.4}"),
                format!("{fast_s:.4}"),
                format!("{par1_s:.4}"),
                format!("{parn_s:.4}"),
                ratio(par1_vs_fast),
                ratio(parn_vs_fast),
                format!("{refq:.12}"),
                if labels_identical { "identical".into() } else { "DIVERGED".into() },
            ]);
            if !entries.is_empty() {
                entries.push(',');
            }
            entries.push_str(&format!(
                "\n    {{\n      \"graph\": \"{name}\",\n      \"pruning\": {pruning},\n      \
                 \"vertices\": {nv},\n      \"arcs\": {na},\n      \
                 \"instrumented_opt_seconds\": {instr_s:.6},\n      \
                 \"fast_opt_seconds\": {fast_s:.6},\n      \
                 \"parallel1_opt_seconds\": {par1_s:.6},\n      \
                 \"parallel{par_n}_opt_seconds\": {parn_s:.6},\n      \
                 \"fast_opt_speedup\": {fast_speedup:.4},\n      \
                 \"parallel1_vs_fast\": {par1_vs_fast:.4},\n      \
                 \"parallel{par_n}_vs_fast\": {parn_vs_fast:.4},\n      \
                 \"modularity\": {refq:.15},\n      \"modularity_drift\": {drift:.3e},\n      \
                 \"labels_identical\": {labels_identical}\n    }}",
                nv = g.num_vertices(),
                na = g.num_arcs(),
            ));
        }
    }
    t.print();
    let gm_fast = geometric_mean(&fast_speedups);
    let gm_par1 = geometric_mean(&par1_speedups);
    let gm_parn = geometric_mean(&parn_speedups);
    println!(
        "fast vs instrumented: geo-mean {}; parallel@1 vs fast: geo-mean {}; \
         parallel@{par_n} vs fast: geo-mean {} ({cores}-core host); max |dQ| = {max_drift:.1e}; \
         labels {}",
        ratio(gm_fast),
        ratio(gm_par1),
        ratio(gm_parn),
        if all_identical {
            "identical on every workload"
        } else {
            "DIVERGED — backends disagree"
        },
    );
    let json = format!(
        "{{\n  \"experiment\": \"backend_snapshot\",\n  \"scale\": \"{scale:?}\",\n  \
         \"device\": \"tesla_k40m\",\n  \"host_cores\": {cores},\n  \
         \"parallel_threads\": {par_n},\n  \
         \"profiles\": [\"{}\", \"{}\", \"{} x1\", \"{} x{par_n}\"],\n  \
         \"workloads\": [{entries}\n  ],\n  \"summary\": {{\n    \
         \"geo_mean_fast_opt_speedup\": {gm_fast:.4},\n    \
         \"geo_mean_parallel1_vs_fast\": {gm_par1:.4},\n    \
         \"geo_mean_parallel{par_n}_vs_fast\": {gm_parn:.4},\n    \
         \"max_modularity_drift\": {max_drift:.3e},\n    \
         \"all_labels_identical\": {all_identical}\n  }}\n}}\n",
        Profile::Instrumented,
        Profile::Fast,
        Profile::Parallel,
        Profile::Parallel,
    );
    std::fs::create_dir_all(out).ok();
    let path = out.join("BENCH_backend.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    if !all_identical {
        eprintln!(
            "error: backend snapshot found label or modularity divergence between \
             execution profiles (see above)"
        );
        std::process::exit(1);
    }
}

/// Racecheck sweep: the full workload suite through the whole Louvain
/// pipeline under the [`Profile::Racecheck`] hazard detector, with both
/// pruning settings. The gate is two-fold: the detector must report zero
/// hazards everywhere (every kernel ordering its shared/global accesses by
/// barriers, atomics, or launch boundaries), and labels/modularity must stay
/// bit-identical to the `Instrumented` profile. Hazards, if any, are printed
/// verbatim. Written as `BENCH_racecheck.json` (regenerated as a CI artifact
/// alongside the backend snapshot).
pub fn racecheck_sweep(scale: Scale, out: &Path) {
    let mut t = Table::new(
        format!("Racecheck — full-pipeline hazard sweep (scale: {scale:?})"),
        &["graph", "pruning", "|V|", "arcs", "Q", "labels", "race events", "reports"],
    );
    let mut entries = String::new();
    let mut total_events = 0u64;
    let mut total_reports = 0usize;
    let mut all_identical = true;
    for spec in SUITE {
        let built = build(spec, scale);
        let g = &built.graph;
        for pruning in [false, true] {
            let mut cfg = gpu_cfg(scale);
            cfg.pruning = pruning;
            let rc = run_gpu_profiled(g, &cfg, Profile::Racecheck);
            let instr = run_gpu_profiled(g, &cfg, Profile::Instrumented);
            let labels_identical =
                rc.result.partition.as_slice() == instr.result.partition.as_slice();
            let drift = (rc.result.modularity - instr.result.modularity).abs();
            all_identical &= labels_identical && drift == 0.0;
            let events = rc.metrics.race_events();
            let reports = rc.metrics.races();
            total_events += events;
            total_reports += reports.len();
            for r in reports {
                println!("HAZARD [{} pruning={pruning}] {r}", spec.name);
            }
            t.row(vec![
                spec.name.to_string(),
                pruning.to_string(),
                g.num_vertices().to_string(),
                g.num_arcs().to_string(),
                format!("{:.12}", rc.result.modularity),
                if labels_identical { "identical".into() } else { "DIVERGED".into() },
                events.to_string(),
                reports.len().to_string(),
            ]);
            if !entries.is_empty() {
                entries.push(',');
            }
            entries.push_str(&format!(
                "\n    {{\n      \"graph\": \"{name}\",\n      \"pruning\": {pruning},\n      \
                 \"vertices\": {nv},\n      \"arcs\": {na},\n      \
                 \"race_events\": {events},\n      \"race_reports\": [{reps}],\n      \
                 \"labels_identical\": {labels_identical},\n      \
                 \"modularity_drift\": {drift:.3e}\n    }}",
                name = spec.name,
                nv = g.num_vertices(),
                na = g.num_arcs(),
                reps = reports
                    .iter()
                    .map(|r| format!("\n        {:?}", r.to_string()))
                    .collect::<Vec<_>>()
                    .join(","),
            ));
        }
    }
    t.print();
    let clean = total_events == 0 && total_reports == 0;
    println!(
        "racecheck: {} race events / {} reports across the suite; labels {} \
         (gate: zero hazards, bit-identical to instrumented)",
        total_events,
        total_reports,
        if all_identical {
            "identical on every workload"
        } else {
            "DIVERGED — backends disagree"
        },
    );
    println!("RACECHECK VERDICT: {}", if clean && all_identical { "clean" } else { "HAZARDS" });
    let json = format!(
        "{{\n  \"experiment\": \"racecheck_sweep\",\n  \"scale\": \"{scale:?}\",\n  \
         \"device\": \"tesla_k40m\",\n  \"profiles\": [\"{}\", \"{}\"],\n  \
         \"workloads\": [{entries}\n  ],\n  \"summary\": {{\n    \
         \"total_race_events\": {total_events},\n    \
         \"total_race_reports\": {total_reports},\n    \
         \"all_labels_identical\": {all_identical},\n    \
         \"clean\": {ok}\n  }}\n}}\n",
        Profile::Racecheck,
        Profile::Instrumented,
        ok = clean && all_identical,
    );
    std::fs::create_dir_all(out).ok();
    let path = out.join("BENCH_racecheck.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    if !(clean && all_identical) {
        eprintln!("error: racecheck sweep found hazards or divergent backends (see above)");
        std::process::exit(1);
    }
}

/// `repro serve` — the serving layer under closed-loop load. Replays the
/// seeded suite trace twice against two fresh servers at the requested
/// client concurrency, then a third time against a server warm-started
/// from the second replay's cache snapshot. Aggregates per-workload
/// outcomes and gates on the service invariants: no lost or duplicated
/// jobs, bit-identical results per content key (cache/coalescing
/// identity), replay determinism (equal semantic digests), at least one
/// pooled-path job (the oversized workload), and a pure-cache-hit warm
/// replay (zero misses after restore).
pub fn serve_snapshot(scale: Scale, out: &Path, clients: usize) {
    use cd_serve::{
        run_trace, suggested_device_bytes, LatencyStats, Server, ServerConfig, TraceConfig,
        TraceReport,
    };
    use std::collections::HashMap;

    let clients = clients.max(1);
    let mut trace = TraceConfig::suite(scale);
    trace.clients = clients;
    trace.base.config = gpu_cfg(scale);
    // The workload with the largest device footprint becomes the trace's
    // oversized job: device memory is sized just below it (and above every
    // other workload), forcing it — and only it — onto the pooled path.
    let oversized = trace
        .workloads
        .iter()
        .max_by_key(|name| {
            let w = cd_workloads::load(name, scale).expect("suite names resolve");
            cd_core::estimated_device_bytes(&w.graph)
        })
        .expect("suite is non-empty")
        .clone();
    trace.workloads.retain(|w| *w != oversized);
    trace.oversized = Some(oversized.clone());
    let device_bytes =
        suggested_device_bytes(&trace).expect("suite names resolve").expect("oversized is set");
    let mut device = cd_gpusim::DeviceConfig::tesla_k40m();
    device.global_mem_bytes = device_bytes;

    let snap_path = out.join("serve_cache.snap");
    let replay = |warm_from: Option<&Path>, save_to: Option<&Path>| -> TraceReport {
        let mut server = Server::new(ServerConfig {
            queue_capacity: 64,
            workers: clients,
            device: device.clone(),
            cache_snapshot: warm_from.map(|p| p.to_path_buf()),
            ..ServerConfig::default()
        });
        let report = run_trace(&server, &trace).expect("suite workload names resolve");
        if let Some(p) = save_to {
            match server.snapshot_cache_to(p) {
                Ok(n) => println!("serve: snapshotted {n} cache entries to {}", p.display()),
                Err(e) => eprintln!("serve: could not snapshot cache to {}: {e}", p.display()),
            }
        }
        server.shutdown();
        report
    };
    println!(
        "serve: {} clients × {} jobs ({} workloads × pruning × {} duplicates × {} passes \
         + {} oversized/pass), replay 1/3 …",
        clients,
        trace.workloads.len() * 2 * trace.duplicates * trace.passes + trace.passes,
        trace.workloads.len(),
        trace.duplicates,
        trace.passes,
        1,
    );
    std::fs::create_dir_all(out).ok();
    let a = replay(None, None);
    println!("serve: replay 2/3 (determinism check, snapshot at exit) …");
    let b = replay(None, Some(&snap_path));
    println!("serve: replay 3/3 (warm start from {}) …", snap_path.display());
    let c = replay(Some(&snap_path), None);

    let deterministic =
        a.result_digest() == b.result_digest() && a.result_digest() == c.result_digest();
    let consistent = a.results_consistent() && b.results_consistent() && c.results_consistent();
    // Warm start: every content key the trace computes was in the snapshot,
    // so the third replay must answer everything from the restored cache.
    let warm_restored = c.metrics.cache_restored_entries;
    let warm_pure = c.metrics.cache.misses == 0 && warm_restored > 0;
    let pooled_exercised = a.metrics.pooled_jobs > 0 && b.metrics.pooled_jobs > 0;
    // The oversized workload must have gone through the sharded
    // out-of-core engine, with actual halo traffic on record.
    let sharded_exercised = a.metrics.sharded_jobs > 0
        && b.metrics.sharded_jobs > 0
        && a.metrics.exchange_rounds > 0
        && a.metrics.ghost_bytes > 0;

    // Aggregate replay 1 per content key (workload, pruning).
    #[derive(Default)]
    struct KeyAgg {
        jobs: usize,
        computed: usize,
        cache_hits: usize,
        coalesced: usize,
        q_bits: Option<u64>,
        labels: Option<u64>,
        latency_ms: Vec<f64>,
    }
    let mut per_key: HashMap<(&str, bool), KeyAgg> = HashMap::new();
    for r in &a.records {
        let agg = per_key.entry((r.workload.as_str(), r.pruning)).or_default();
        agg.jobs += 1;
        match r.path {
            "cache-hit" => agg.cache_hits += 1,
            "coalesced" => agg.coalesced += 1,
            "-" => {}
            _ => agg.computed += 1,
        }
        agg.q_bits = agg.q_bits.or(r.modularity_bits);
        agg.labels = agg.labels.or(r.labels_hash);
        agg.latency_ms.push(r.latency.as_secs_f64() * 1e3);
    }

    let mut t = Table::new(
        format!("repro serve — closed-loop suite trace (scale: {scale:?}, clients: {clients})"),
        &[
            "graph",
            "pruning",
            "jobs",
            "computed",
            "cache-hit",
            "coalesced",
            "Q",
            "labels",
            "mean-lat[ms]",
        ],
    );
    for name in &trace.workloads {
        for pruning in [false, true] {
            let Some(agg) = per_key.get(&(name.as_str(), pruning)) else { continue };
            let mean_ms = agg.latency_ms.iter().sum::<f64>() / agg.latency_ms.len().max(1) as f64;
            t.row(vec![
                name.clone(),
                pruning.to_string(),
                agg.jobs.to_string(),
                agg.computed.to_string(),
                agg.cache_hits.to_string(),
                agg.coalesced.to_string(),
                agg.q_bits.map_or("-".into(), |bits| format!("{:.6}", f64::from_bits(bits))),
                agg.labels.map_or("-".into(), |h| format!("{h:016x}")),
                format!("{mean_ms:.2}"),
            ]);
        }
    }
    t.print();
    let _ = t.save_csv(out, "serve_trace");

    let m = &a.metrics;
    println!(
        "serve: {} jobs in {:.2}s ({:.1} jobs/s); {} computed runs, {} cache hits, \
         {} coalesced (reuse {:.0}%); lost {} / duplicated {}; {}",
        a.records.len(),
        a.wall.as_secs_f64(),
        a.throughput(),
        m.cache.misses,
        m.cache.hits,
        m.cache.coalesced,
        m.cache.reuse_rate() * 100.0,
        a.lost,
        a.duplicated,
        if deterministic { "replays bit-identical" } else { "REPLAYS DIVERGED" },
    );

    let lat_json = |l: &LatencyStats| {
        format!(
            "{{ \"count\": {}, \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"max_ms\": {:.3} }}",
            l.count, l.mean_ms, l.p50_ms, l.p90_ms, l.p99_ms, l.max_ms
        )
    };
    println!(
        "serve: warm replay restored {} entries, {} misses, {} hits ({})",
        warm_restored,
        c.metrics.cache.misses,
        c.metrics.cache.hits,
        if warm_pure { "pure cache" } else { "NOT PURE" },
    );
    let failed = m.failed + b.metrics.failed + c.metrics.failed;
    let ok = a.lost == 0
        && b.lost == 0
        && c.lost == 0
        && a.duplicated == 0
        && b.duplicated == 0
        && c.duplicated == 0
        && consistent
        && deterministic
        && failed == 0
        && pooled_exercised
        && sharded_exercised
        && warm_pure;
    let json = format!(
        "{{\n  \"experiment\": \"serve_snapshot\",\n  \"scale\": \"{scale:?}\",\n  \
         \"device\": \"tesla_k40m\",\n  \"config\": {{\n    \"clients\": {clients},\n    \
         \"workers\": {clients},\n    \"queue_capacity\": 64,\n    \"num_devices\": 4,\n    \
         \"passes\": {passes},\n    \"duplicates\": {dups},\n    \"seed\": {seed}\n  }},\n  \
         \"totals\": {{\n    \"jobs\": {jobs},\n    \"submitted\": {submitted},\n    \
         \"completed\": {completed},\n    \"failed\": {failed},\n    \
         \"cancelled\": {cancelled},\n    \"expired\": {expired},\n    \
         \"queue_full_retries\": {retries},\n    \"pooled_jobs\": {pooled},\n    \
         \"sharded_jobs\": {sharded},\n    \"exchange_rounds\": {xrounds},\n    \
         \"ghost_bytes\": {gbytes},\n    \
         \"degraded_jobs\": {degraded},\n    \"lost\": {lost},\n    \
         \"duplicated\": {duplicated}\n  }},\n  \
         \"throughput_jobs_per_s\": {tput:.3},\n  \"wall_s\": {wall:.3},\n  \
         \"latency\": {{\n    \"queue_wait\": {qw},\n    \"exec\": {ex},\n    \
         \"total\": {tot}\n  }},\n  \"cache\": {{\n    \"hits\": {hits},\n    \
         \"misses\": {misses},\n    \"coalesced\": {coal},\n    \
         \"hit_rate\": {hit_rate:.4},\n    \"reuse_rate\": {reuse_rate:.4},\n    \
         \"insertions\": {ins},\n    \"evictions\": {evi},\n    \
         \"entries\": {entries},\n    \"bytes\": {bytes}\n  }},\n  \
         \"max_queue_depth\": {mqd},\n  \"max_in_flight\": {mif},\n  \
         \"oversized_workload\": \"{oversized}\",\n  \
         \"device_global_mem_bytes\": {device_bytes},\n  \
         \"warm_restart\": {{\n    \"restored_entries\": {warm_restored},\n    \
         \"misses\": {warm_misses},\n    \"hits\": {warm_hits},\n    \
         \"pure_cache\": {warm_pure}\n  }},\n  \
         \"results_consistent\": {consistent},\n  \"deterministic\": {deterministic},\n  \
         \"pooled_exercised\": {pooled_exercised},\n  \
         \"sharded_exercised\": {sharded_exercised},\n  \
         \"ok\": {ok}\n}}\n",
        warm_misses = c.metrics.cache.misses,
        warm_hits = c.metrics.cache.hits,
        passes = trace.passes,
        dups = trace.duplicates,
        seed = trace.seed,
        jobs = a.records.len(),
        submitted = m.submitted,
        completed = m.completed,
        cancelled = m.cancelled,
        expired = m.expired,
        retries = a.records.iter().map(|r| r.retries).sum::<u64>(),
        pooled = m.pooled_jobs,
        sharded = m.sharded_jobs,
        xrounds = m.exchange_rounds,
        gbytes = m.ghost_bytes,
        degraded = m.degraded_jobs,
        lost = a.lost,
        duplicated = a.duplicated,
        tput = a.throughput(),
        wall = a.wall.as_secs_f64(),
        qw = lat_json(&m.queue_wait),
        ex = lat_json(&m.exec),
        tot = lat_json(&m.total),
        hits = m.cache.hits,
        misses = m.cache.misses,
        coal = m.cache.coalesced,
        hit_rate = m.cache.hit_rate(),
        reuse_rate = m.cache.reuse_rate(),
        ins = m.cache.insertions,
        evi = m.cache.evictions,
        entries = m.cache_entries,
        bytes = m.cache_bytes,
        mqd = m.max_queue_depth,
        mif = m.max_in_flight,
    );
    std::fs::create_dir_all(out).ok();
    let path = out.join("BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("SERVE VERDICT: {}", if ok { "clean" } else { "VIOLATIONS" });
    if !ok {
        eprintln!(
            "error: serve trace violated a service invariant \
             (lost/duplicated jobs, failed runs, inconsistent or nondeterministic results, \
             pooled/sharded path not exercised, or impure warm restart)"
        );
        std::process::exit(1);
    }
}

/// `repro overload` — the serving layer under *open-loop* load. Calibrates
/// per-job service time with a short closed-loop warmup, sweeps Poisson
/// arrival rates to locate the saturation knee (the largest offered rate the
/// server still completes ≥ 90% of), then measures 1×/2×/5× the knee and
/// reports latency, goodput, and shed/expired/rejected accounting into
/// `BENCH_overload.json`.
///
/// The hard gate (nonzero exit) covers only accounting invariants — no job
/// lost or double-settled, no failed runs. SLO-boundedness (p99 of completed
/// jobs at 5× within 2× of the 1× value) and shedding engagement are
/// reported as soft flags so timing noise on loaded CI hosts cannot flake
/// the build.
pub fn overload(scale: Scale, out: &Path) {
    use cd_serve::{
        distinct_rings, run_open_loop, LatencyStats, OpenLoopConfig, OpenLoopReport, Server,
        ServerConfig,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let (jobs_per_run, ring_base) = match scale {
        Scale::Tiny => (60usize, 512usize),
        Scale::Small => (120, 1024),
        _ => (200, 2048),
    };
    let workers = 4usize;
    let queue_capacity = 32usize;
    let fresh_server = || {
        Server::new(ServerConfig {
            queue_capacity,
            workers,
            cache_bytes: 0, // every job must compute: no cache, no coalescing shortcut
            ..ServerConfig::default()
        })
    };

    // Calibration: submit a batch all at once and await it, so the measured
    // exec times include the contention of `workers` concurrent runs — the
    // regime every open-loop run below actually operates in. Sequential
    // calibration would overstate capacity several-fold.
    println!("overload: calibrating service time ({} concurrent closed-loop jobs) …", 16);
    let calib_graphs = distinct_rings(16, ring_base);
    let mut server = fresh_server();
    let ids: Vec<_> = calib_graphs
        .iter()
        .map(|g| {
            server
                .submit(
                    Arc::clone(g),
                    cd_serve::JobOptions { config: gpu_cfg(scale), ..Default::default() },
                )
                .expect("calibration submit")
        })
        .collect();
    for id in ids {
        server.await_result(id);
    }
    let calib = server.metrics();
    server.shutdown();
    let mean_ms = calib.exec.mean_ms.max(1e-3);
    let p99_ms = calib.exec.p99_ms.max(mean_ms);
    // Service capacity μ: `workers` parallel servers, each ~mean_ms per job
    // at full concurrency. The deadline leaves generous headroom over the
    // worst observed exec so sub-knee rates complete comfortably and only
    // genuine overload sheds.
    let mu = workers as f64 * 1e3 / mean_ms;
    let deadline = Duration::from_secs_f64((3.0 * p99_ms / 1e3).max(0.1));
    println!(
        "overload: exec mean {mean_ms:.2} ms, p99 {p99_ms:.2} ms → capacity ≈ {mu:.1} jobs/s, \
         deadline {:.0} ms",
        deadline.as_secs_f64() * 1e3
    );

    let run_at = |rate: f64, jobs: usize, seed: u64| -> OpenLoopReport {
        let mut server = fresh_server();
        let graphs = distinct_rings(jobs, ring_base);
        let cfg = OpenLoopConfig {
            seed,
            rate_per_sec: rate,
            jobs,
            deadline: Some(deadline),
            base: cd_serve::JobOptions { config: gpu_cfg(scale), ..Default::default() },
        };
        let report = run_open_loop(&server, &cfg, &graphs);
        server.shutdown();
        report
    };

    // Knee sweep: fractions of the calibrated capacity, short runs.
    let factors = [0.5, 0.75, 1.0, 1.5, 2.0];
    let sweep_jobs = (jobs_per_run / 2).max(20);
    let mut t = Table::new(
        format!("repro overload — arrival-rate sweep (scale: {scale:?}, workers: {workers})"),
        &[
            "rate[/s]",
            "offered",
            "completed",
            "expired",
            "rejected",
            "ratio",
            "goodput[/s]",
            "p99[ms]",
        ],
    );
    let mut sweep_rows = Vec::new();
    let mut knee = 0.5 * mu;
    for (i, f) in factors.iter().enumerate() {
        let rate = f * mu;
        let r = run_at(rate, sweep_jobs, 0xC0FFEE + i as u64);
        let ratio = r.completion_ratio();
        if ratio >= 0.9 {
            knee = rate;
        }
        t.row(vec![
            format!("{rate:.1}"),
            r.offered.to_string(),
            r.completed.to_string(),
            r.expired.to_string(),
            (r.rejected_queue_full + r.rejected_slo + r.rejected_other).to_string(),
            format!("{ratio:.2}"),
            format!("{:.1}", r.goodput_per_sec()),
            format!("{:.2}", r.completed_latency.p99_ms),
        ]);
        sweep_rows.push((rate, r));
    }
    t.print();
    let _ = t.save_csv(out, "overload_sweep");
    println!("overload: saturation knee ≈ {knee:.1} jobs/s");

    // Measured runs at 1×, 2×, and 5× the knee.
    let mut measured = Vec::new();
    for (label, mult, seed) in [("1x", 1.0, 0xA11CE_u64), ("2x", 2.0, 0xB0B), ("5x", 5.0, 0x5EED)] {
        let rate = mult * knee;
        println!("overload: measuring {label} knee ({rate:.1} jobs/s, {jobs_per_run} jobs) …");
        let r = run_at(rate, jobs_per_run, seed);
        println!(
            "overload: {label}: {}/{} completed, {} expired \
             (admission {}, sweep {}, dequeue {}, shed {}), {} rejected \
             (queue {}, slo {}), p50 {:.2} ms, p99 {:.2} ms, goodput {:.1}/s, \
             max queue depth {}, lost {}, duplicated {}",
            r.completed,
            r.offered,
            r.expired,
            r.metrics.expired_admission,
            r.metrics.expired_sweep,
            r.metrics.expired_dequeue,
            r.metrics.shed_predicted,
            r.rejected_queue_full + r.rejected_slo + r.rejected_other,
            r.rejected_queue_full,
            r.rejected_slo,
            r.completed_latency.p50_ms,
            r.completed_latency.p99_ms,
            r.goodput_per_sec(),
            r.metrics.max_queue_depth,
            r.lost,
            r.duplicated,
        );
        measured.push((label, rate, r));
    }

    let one = &measured[0].2;
    let five = &measured[2].2;
    // Hard gate: accounting only. Every admitted job settles exactly once and
    // nothing fails; overload must shed, not corrupt.
    let accounting_ok =
        measured.iter().all(|(_, _, r)| r.lost == 0 && r.duplicated == 0 && r.failed == 0);
    // Soft flags: the SLO story. At 5× the knee the queue stays bounded, the
    // shedding machinery engages, and the p99 of *completed* jobs stays within
    // 2× of the uncontended value (expired jobs don't count — they were shed).
    let queue_bounded = five.metrics.max_queue_depth <= queue_capacity;
    let sheds_engaged = five.expired + five.rejected_queue_full + five.rejected_slo > 0;
    let slo_bounded = one.completed_latency.p99_ms <= 0.0
        || five.completed_latency.p99_ms <= 2.0 * one.completed_latency.p99_ms
        || five.completed == 0;

    let lat_json = |l: &LatencyStats| {
        format!(
            "{{ \"count\": {}, \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"max_ms\": {:.3} }}",
            l.count, l.mean_ms, l.p50_ms, l.p90_ms, l.p99_ms, l.max_ms
        )
    };
    let run_json = |r: &OpenLoopReport| {
        format!(
            "{{\n      \"offered\": {},\n      \"admitted\": {},\n      \
             \"completed\": {},\n      \"expired\": {},\n      \
             \"expired_admission\": {},\n      \"expired_sweep\": {},\n      \
             \"expired_dequeue\": {},\n      \"shed_predicted\": {},\n      \
             \"rejected_queue_full\": {},\n      \"rejected_slo\": {},\n      \
             \"failed\": {},\n      \"goodput_per_s\": {:.3},\n      \
             \"max_queue_depth\": {},\n      \"wall_s\": {:.3},\n      \
             \"lost\": {},\n      \"duplicated\": {},\n      \
             \"completed_latency\": {}\n    }}",
            r.offered,
            r.admitted,
            r.completed,
            r.expired,
            r.metrics.expired_admission,
            r.metrics.expired_sweep,
            r.metrics.expired_dequeue,
            r.metrics.shed_predicted,
            r.rejected_queue_full,
            r.rejected_slo,
            r.failed,
            r.goodput_per_sec(),
            r.metrics.max_queue_depth,
            r.wall.as_secs_f64(),
            r.lost,
            r.duplicated,
            lat_json(&r.completed_latency),
        )
    };
    let sweep_json = sweep_rows
        .iter()
        .map(|(rate, r)| {
            format!(
                "{{ \"rate_per_s\": {rate:.3}, \"completed\": {}, \"expired\": {}, \
                 \"rejected\": {}, \"completion_ratio\": {:.4}, \"goodput_per_s\": {:.3}, \
                 \"p99_ms\": {:.3} }}",
                r.completed,
                r.expired,
                r.rejected_queue_full + r.rejected_slo + r.rejected_other,
                r.completion_ratio(),
                r.goodput_per_sec(),
                r.completed_latency.p99_ms,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let measured_json = measured
        .iter()
        .map(|(label, rate, r)| {
            format!("\"{label}\": {{ \"rate_per_s\": {rate:.3}, \"run\": {} }}", run_json(r))
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"experiment\": \"overload\",\n  \"scale\": \"{scale:?}\",\n  \
         \"config\": {{\n    \"workers\": {workers},\n    \
         \"queue_capacity\": {queue_capacity},\n    \"jobs_per_run\": {jobs_per_run},\n    \
         \"ring_base\": {ring_base},\n    \"deadline_ms\": {deadline_ms:.3}\n  }},\n  \
         \"calibration\": {{ \"exec_mean_ms\": {mean_ms:.3}, \"exec_p99_ms\": {p99_ms:.3}, \
         \"capacity_jobs_per_s\": {mu:.3} }},\n  \
         \"knee_jobs_per_s\": {knee:.3},\n  \"sweep\": [\n    {sweep_json}\n  ],\n  \
         \"measured\": {{\n    {measured_json}\n  }},\n  \
         \"queue_bounded\": {queue_bounded},\n  \"sheds_engaged\": {sheds_engaged},\n  \
         \"slo_bounded\": {slo_bounded},\n  \"accounting_ok\": {accounting_ok},\n  \
         \"ok\": {accounting_ok}\n}}\n",
        deadline_ms = deadline.as_secs_f64() * 1e3,
    );
    std::fs::create_dir_all(out).ok();
    let path = out.join("BENCH_overload.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!(
        "OVERLOAD VERDICT: {} (queue_bounded {queue_bounded}, sheds_engaged {sheds_engaged}, \
         slo_bounded {slo_bounded})",
        if accounting_ok { "clean" } else { "VIOLATIONS" },
    );
    if !accounting_ok {
        eprintln!("error: open-loop overload run lost a job, settled one twice, or failed a run");
        std::process::exit(1);
    }
}

/// Incremental-recompute benchmark: sweeps edge-churn fractions over the
/// featured suite, comparing warm-start Louvain (seeded from the pre-delta
/// partition, re-evaluating only the touched frontier) against a
/// from-scratch run on the same patched graph. Written as
/// `BENCH_incremental.json` (committed baseline at `Scale::Medium`,
/// regenerated as a CI artifact on every push).
///
/// Two gates, honest numbers both, enforced at `Scale::Medium` and above
/// (the acceptance scale) and reported informationally below it:
/// * correctness — the warm-start *deficit* `max(0, Q_scratch − Q_warm)`
///   must stay within `max(1e-3, reference dispersion)` at every churn
///   fraction, where the reference dispersion is measured in-run per graph:
///   the spread of from-scratch Q across the base graph and the ≤ 0.1%-churn
///   instances — graphs that differ by a handful of edges. Louvain's greedy
///   trajectory is chaotic on some workloads (two cold runs on near-identical
///   graphs land up to ~2e-2 of Q apart), so no incremental method can track
///   the reference tighter than the reference tracks itself; the gate
///   enforces the strongest achievable statement and reports the raw signed
///   ΔQ per cell alongside;
/// * performance — median warm-vs-scratch wall-time speedup ≥ 3× at ≤ 0.1%
///   churn (tiny smoke runs carry too much fixed overhead to gate on).
pub fn incremental(scale: Scale, out: &Path) {
    use cd_core::{louvain_gpu, louvain_warm_start};
    use cd_gpusim::Device;
    use cd_graph::apply_delta;
    use cd_workloads::{churn, featured};
    use std::time::Instant;

    const DQ_BAND: f64 = 1e-3;
    const SPEEDUP_FLOOR: f64 = 3.0;
    const SMALL_CHURN: f64 = 0.001; // "≤ 0.1% churn" cutoff, inclusive
    let fracs = [0.0001, 0.001, 0.01, 0.1];

    let mut t = Table::new(
        format!("Incremental recompute: warm start vs scratch (scale: {scale:?})"),
        &[
            "graph",
            "churn",
            "ops",
            "touched",
            "scratch[s]",
            "warm[s]",
            "speedup",
            "|dQ|",
            "warm stages",
        ],
    );
    let cfg = gpu_cfg(scale);
    let mut entries = String::new();
    let mut graph_summaries = String::new();
    let mut small_churn_speedups = Vec::new();
    let mut max_dq = 0.0f64;
    let mut max_deficit = 0.0f64;
    let mut deficit_ok = true;
    for spec in featured() {
        let built = build(spec, scale);
        let g = &built.graph;
        // The pre-delta partition every warm run re-seeds from. Its Q also
        // anchors the reference-dispersion measurement below.
        let seed = louvain_gpu(&Device::k40m(), g, &cfg).expect("base run");
        let mut ref_qs = vec![seed.modularity];
        struct Cell {
            frac: f64,
            ops: usize,
            touched: usize,
            scratch_s: f64,
            warm_s: f64,
            scratch_q: f64,
            warm_q: f64,
            warm_stages: usize,
        }
        let mut cells: Vec<Cell> = Vec::new();
        for (fi, &frac) in fracs.iter().enumerate() {
            let batch = churn(g, 0xD17A + fi as u64, frac);
            let (patched, touched) = apply_delta(g, &batch).expect("churn batches apply cleanly");
            // Interleaved best-of-3: scratch and warm alternate so drift in
            // host load hits both sides alike; best-of filters the noise.
            let mut scratch_best: Option<(f64, f64)> = None; // (wall, Q)
            let mut warm_best: Option<(f64, f64, usize)> = None; // (wall, Q, stages)
            for _ in 0..3 {
                let t0 = Instant::now();
                let s = louvain_gpu(&Device::k40m(), &patched, &cfg).expect("scratch run");
                let sw = t0.elapsed().as_secs_f64();
                if scratch_best.is_none_or(|(w, _)| sw < w) {
                    scratch_best = Some((sw, s.modularity));
                }
                let t1 = Instant::now();
                let w =
                    louvain_warm_start(&Device::k40m(), &patched, &cfg, &seed.partition, &touched)
                        .expect("warm run");
                let ww = t1.elapsed().as_secs_f64();
                if warm_best.is_none_or(|(x, _, _)| ww < x) {
                    warm_best = Some((ww, w.modularity, w.stages.len()));
                }
            }
            let (scratch_s, scratch_q) = scratch_best.expect("three runs happened");
            let (warm_s, warm_q, warm_stages) = warm_best.expect("three runs happened");
            if frac <= SMALL_CHURN {
                small_churn_speedups.push(scratch_s / warm_s.max(1e-12));
                ref_qs.push(scratch_q);
            }
            cells.push(Cell {
                frac,
                ops: batch.len(),
                touched: touched.len(),
                scratch_s,
                warm_s,
                scratch_q,
                warm_q,
                warm_stages,
            });
        }
        // Reference dispersion: the spread of cold-run Q across the base
        // graph and the small-churn instances — near-identical graphs, so
        // the spread is the reference's own per-instance variability and the
        // resolution limit of any warm-vs-scratch comparison on this graph.
        let spread = ref_qs.iter().cloned().fold(f64::MIN, f64::max)
            - ref_qs.iter().cloned().fold(f64::MAX, f64::min);
        let allowance = DQ_BAND.max(spread);
        let mut graph_max_deficit = 0.0f64;
        for c in &cells {
            let speedup = c.scratch_s / c.warm_s.max(1e-12);
            let dq = c.warm_q - c.scratch_q;
            let deficit = (-dq).max(0.0);
            max_dq = max_dq.max(dq.abs());
            graph_max_deficit = graph_max_deficit.max(deficit);
            t.row(vec![
                spec.name.to_string(),
                format!("{:.2}%", c.frac * 100.0),
                c.ops.to_string(),
                c.touched.to_string(),
                format!("{:.4}", c.scratch_s),
                format!("{:.4}", c.warm_s),
                ratio(speedup),
                format!("{dq:+.3e}"),
                c.warm_stages.to_string(),
            ]);
            if !entries.is_empty() {
                entries.push(',');
            }
            entries.push_str(&format!(
                "\n    {{\n      \"graph\": \"{name}\",\n      \"churn_frac\": {frac},\n      \
                 \"delta_ops\": {ops},\n      \"touched_vertices\": {touched},\n      \
                 \"scratch_seconds\": {scratch_s:.6},\n      \"warm_seconds\": {warm_s:.6},\n      \
                 \"speedup\": {speedup:.4},\n      \"scratch_modularity\": {scratch_q:.15},\n      \
                 \"warm_modularity\": {warm_q:.15},\n      \"dq\": {dq:.3e},\n      \
                 \"deficit\": {deficit:.3e},\n      \"warm_stages\": {warm_stages}\n    }}",
                name = spec.name,
                frac = c.frac,
                ops = c.ops,
                touched = c.touched,
                scratch_s = c.scratch_s,
                warm_s = c.warm_s,
                scratch_q = c.scratch_q,
                warm_q = c.warm_q,
                warm_stages = c.warm_stages,
            ));
        }
        max_deficit = max_deficit.max(graph_max_deficit);
        if graph_max_deficit > allowance {
            deficit_ok = false;
        }
        if !graph_summaries.is_empty() {
            graph_summaries.push(',');
        }
        graph_summaries.push_str(&format!(
            "\n    {{ \"graph\": \"{name}\", \"reference_spread\": {spread:.3e}, \
             \"allowance\": {allowance:.3e}, \"max_deficit\": {graph_max_deficit:.3e}, \
             \"ok\": {ok} }}",
            name = spec.name,
            ok = graph_max_deficit <= allowance,
        ));
        println!(
            "  {name}: reference spread {spread:.3e} → allowance {allowance:.3e}, \
             max warm deficit {graph_max_deficit:.3e} ({verdict})",
            name = spec.name,
            verdict = if graph_max_deficit <= allowance { "ok" } else { "EXCEEDED" },
        );
    }
    t.print();

    let median_small = median(&mut small_churn_speedups);
    let gated = scale >= Scale::Medium;
    let dq_ok = !gated || deficit_ok;
    let perf_ok = !gated || median_small >= SPEEDUP_FLOOR;
    println!(
        "incremental: median speedup at ≤{:.1}% churn = {} (gate: ≥{SPEEDUP_FLOOR}x), \
         max warm deficit = {max_deficit:.3e} (gate: ≤max({DQ_BAND:.0e}, per-graph reference \
         spread)), max |ΔQ| = {max_dq:.3e}; gates {} at this scale",
        SMALL_CHURN * 100.0,
        ratio(median_small),
        if gated { "enforced" } else { "informational" },
    );
    let json = format!(
        "{{\n  \"experiment\": \"incremental\",\n  \"scale\": \"{scale:?}\",\n  \
         \"device\": \"tesla_k40m\",\n  \"dq_band\": {DQ_BAND:.0e},\n  \
         \"speedup_floor\": {SPEEDUP_FLOOR},\n  \"sweep\": [{entries}\n  ],\n  \
         \"graphs\": [{graph_summaries}\n  ],\n  \
         \"summary\": {{\n    \"median_small_churn_speedup\": {median_small:.4},\n    \
         \"max_abs_dq\": {max_dq:.3e},\n    \"max_deficit\": {max_deficit:.3e},\n    \
         \"gated\": {gated},\n    \"dq_ok\": {dq_ok},\n    \"perf_ok\": {perf_ok}\n  }},\n  \
         \"ok\": {ok}\n}}\n",
        ok = dq_ok && perf_ok,
    );
    std::fs::create_dir_all(out).ok();
    let path = out.join("BENCH_incremental.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    if !dq_ok {
        eprintln!(
            "error: warm-start modularity fell {max_deficit:.3e} short of the from-scratch run \
             on some cell, beyond that graph's reference dispersion (floor {DQ_BAND:.0e})"
        );
        std::process::exit(1);
    }
    if !perf_ok {
        eprintln!(
            "error: median small-churn speedup {median_small:.2}x is below the {SPEEDUP_FLOOR}x floor"
        );
        std::process::exit(1);
    }
}

/// `repro portfolio` — quality/speed snapshot of the algorithm portfolio:
/// every member (Louvain, Leiden, sync LPA, async LPA) on every suite
/// workload, reporting modularity, NMI, and wall time per cell
/// (`BENCH_portfolio.json`).
///
/// NMI is scored against the planted ground truth where the generator
/// provides one, and against the same workload's Louvain partition
/// otherwise — either way a partition over the same vertex set, so with the
/// hardened `cd_graph::compare::nmi` the score is finite on *every* cell,
/// and the experiment gates on exactly that (exit 1 on any non-finite or
/// out-of-range value). It also gates the refinement commit rule via the
/// per-stage `refine_delta_q` telemetry: no refinement pass of any Leiden
/// run may ever *lose* modularity at its own stage. (The final Leiden-vs-
/// Louvain Q gap is reported informationally — refinement reshapes the
/// contraction, so later stages legitimately explore a different
/// trajectory and the end-to-end comparison is not a guaranteed
/// invariant.)
pub fn portfolio(scale: Scale, out: &Path) {
    use cd_core::{detect_communities, Algorithm};
    use cd_gpusim::Device;
    use cd_graph::compare::nmi;
    use std::time::Instant;

    let mut t = Table::new(
        format!("Algorithm portfolio: quality and wall time (scale: {scale:?})"),
        &["graph", "algorithm", "Q", "NMI", "ref", "comms", "wall[s]"],
    );
    let cfg = gpu_cfg(scale);
    let mut entries = String::new();
    let mut nmi_ok = true;
    let mut refine_ok = true;
    let mut worst_nmi = f64::INFINITY;
    let mut min_refine_delta = 0.0f64;
    let mut max_leiden_deficit = 0.0f64;
    for spec in SUITE {
        let built = build(spec, scale);
        let g = &built.graph;
        // Louvain runs first: its partition is the NMI reference for
        // workloads without planted ground truth, and its Q anchors the
        // Leiden-never-loses gate.
        let mut louvain_partition: Option<cd_graph::Partition> = None;
        let mut louvain_q = f64::NAN;
        for algorithm in Algorithm::ALL {
            let t0 = Instant::now();
            let res = detect_communities(&Device::k40m(), g, &cfg, algorithm)
                .expect("portfolio member runs the suite");
            let wall = t0.elapsed().as_secs_f64();
            let (score, reference) = match &built.truth {
                Some(truth) => (nmi(&res.partition, truth), "truth"),
                None => match &louvain_partition {
                    Some(lp) => (nmi(&res.partition, lp), "louvain"),
                    None => (1.0, "self"), // Louvain scored against itself
                },
            };
            if !score.is_finite() || !(0.0..=1.0).contains(&score) {
                nmi_ok = false;
            }
            worst_nmi = worst_nmi.min(score);
            match algorithm {
                Algorithm::Louvain => {
                    louvain_q = res.modularity;
                    louvain_partition = Some(res.partition.clone());
                }
                Algorithm::Leiden => {
                    // The guaranteed invariant: every refinement pass holds
                    // or improves its own stage's modularity.
                    for s in &res.stages {
                        min_refine_delta = min_refine_delta.min(s.refine_delta_q);
                        if s.refine_delta_q < -1e-12 {
                            refine_ok = false;
                        }
                    }
                    // Informational: the end-to-end gap vs Louvain.
                    max_leiden_deficit =
                        max_leiden_deficit.max((louvain_q - res.modularity).max(0.0));
                }
                _ => {}
            }
            t.row(vec![
                spec.name.to_string(),
                algorithm.label().to_string(),
                f4(res.modularity),
                format!("{score:.4}"),
                reference.to_string(),
                res.partition.num_communities().to_string(),
                format!("{wall:.4}"),
            ]);
            if !entries.is_empty() {
                entries.push(',');
            }
            entries.push_str(&format!(
                "\n    {{\n      \"graph\": \"{name}\",\n      \"algorithm\": \"{alg}\",\n      \
                 \"modularity\": {q:.15},\n      \"nmi\": {score:.6},\n      \
                 \"nmi_reference\": \"{reference}\",\n      \"communities\": {comms},\n      \
                 \"wall_seconds\": {wall:.6}\n    }}",
                name = spec.name,
                alg = algorithm.label(),
                q = res.modularity,
                comms = res.partition.num_communities(),
            ));
        }
    }
    t.print();
    println!(
        "portfolio: worst NMI = {worst_nmi:.4} (gate: finite, in [0,1]), \
         min per-stage refinement ΔQ = {min_refine_delta:.3e} (gate: ≥0), \
         max final Leiden deficit vs Louvain = {max_leiden_deficit:.3e} (informational)"
    );
    let json = format!(
        "{{\n  \"experiment\": \"portfolio\",\n  \"scale\": \"{scale:?}\",\n  \
         \"device\": \"tesla_k40m\",\n  \"cells\": [{entries}\n  ],\n  \
         \"summary\": {{\n    \"worst_nmi\": {worst_nmi:.6},\n    \
         \"min_refine_delta_q\": {min_refine_delta:.3e},\n    \
         \"max_leiden_deficit\": {max_leiden_deficit:.3e},\n    \
         \"nmi_ok\": {nmi_ok},\n    \"refine_ok\": {refine_ok}\n  }},\n  \
         \"ok\": {ok}\n}}\n",
        ok = nmi_ok && refine_ok,
    );
    std::fs::create_dir_all(out).ok();
    let path = out.join("BENCH_portfolio.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    if !nmi_ok {
        eprintln!(
            "error: some (algorithm × workload) cell produced a non-finite or out-of-range NMI"
        );
        std::process::exit(1);
    }
    if !refine_ok {
        eprintln!(
            "error: a Leiden refinement pass lost {:.3e} modularity at its own stage — \
             the refinement commit rule must never lose",
            -min_refine_delta
        );
        std::process::exit(1);
    }
}

/// `repro dist` — the partitioned out-of-core path (`cd-dist`): sharded CSR,
/// ghost vertices, halo label exchange. Written as `BENCH_dist.json`
/// (committed baseline at `Scale::Medium`, regenerated as a CI artifact at
/// `--scale small` on every push).
///
/// Two phases, three gates:
/// * **quality** — every featured workload runs sharded across 4 devices
///   each sized to ~60% of the graph's single-device footprint (so no
///   device could hold it alone) and is compared against the single-device
///   oracle. The gate reuses the incremental experiment's honesty
///   methodology: the oracle's own cold-run dispersion across the base
///   graph and two ≤ 0.1%-churn instances sets the per-graph allowance
///   (floored at 1e-3), and the sharded *deficit* `max(0, Q_oracle −
///   Q_sharded)` must stay inside it. Enforced at `Scale::Medium` and
///   above, informational below.
/// * **identity** — a dedicated RMAT graph (scaled with `--scale`, up to
///   tens of millions of arcs at `huge`) runs the full
///   {2, 4} shards × {1, 8} worker-thread matrix under the native-parallel
///   backend. All four cells must produce bit-identical partitions and
///   modularity. Enforced at every scale — this is the CI smoke gate.
/// * **exchange consistency** — zero lost ghost labels and zero ownership
///   violations across every run of both phases. Enforced at every scale.
///
/// Each identity cell also reports the paper-style telemetry: wall time,
/// first-superstep TEPS, exchange rounds, ghost bytes, cut fraction.
pub fn dist(scale: Scale, out: &Path) {
    use cd_core::{estimated_device_bytes, louvain_gpu};
    use cd_dist::{louvain_sharded, DistConfig};
    use cd_gpusim::Device;
    use cd_graph::apply_delta;
    use cd_graph::gen::{rmat, RmatParams};
    use cd_workloads::{churn, featured};
    use std::time::Instant;

    const DQ_BAND: f64 = 1e-3;
    const QUALITY_SHARDS: usize = 4;
    // Target fraction of the single-device footprint each shard device
    // gets: small enough that no device could run the graph alone.
    const MEM_FRACTION: f64 = 0.6;

    // Device size for a forced out-of-core run: aim at `MEM_FRACTION` of
    // the single-device footprint, but never below what the largest shard
    // of any requested shard count actually needs (hub-heavy graphs ghost
    // almost every vertex, so a K=2 shard can exceed half the footprint),
    // and always strictly below the footprint itself.
    let device_bytes_for = |g: &cd_graph::Csr, shard_counts: &[usize]| -> usize {
        let footprint = estimated_device_bytes(g);
        let max_req = shard_counts
            .iter()
            .map(|&k| {
                let s = cd_graph::ShardedCsr::build(g, k);
                s.shards.iter().map(|sh| estimated_device_bytes(&sh.graph)).max().unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        ((footprint as f64 * MEM_FRACTION) as usize)
            .max(max_req + max_req / 16)
            .min(footprint.saturating_sub(1))
            .max(max_req)
    };

    let cfg = gpu_cfg(scale);
    let mut lost_labels = 0usize;
    let mut ownership_violations = 0usize;

    // -- phase 1: quality vs the single-device oracle ------------------------
    let mut t = Table::new(
        format!("Sharded vs single-device Louvain (scale: {scale:?}, {QUALITY_SHARDS} shards)"),
        &[
            "graph",
            "footprint",
            "device",
            "cut%",
            "strategy",
            "oracle Q",
            "sharded Q",
            "deficit",
            "allowance",
            "rounds",
            "ghost KiB",
        ],
    );
    let mut quality_entries = String::new();
    let mut deficit_ok = true;
    let mut max_deficit = 0.0f64;
    for spec in featured() {
        let built = build(spec, scale);
        let g = &built.graph;
        let footprint = estimated_device_bytes(g);
        let oracle = louvain_gpu(&Device::k40m(), g, &cfg).expect("oracle run");
        // Oracle dispersion: cold runs on two near-identical churn
        // instances bound how tightly *any* second method can track it.
        let mut ref_qs = vec![oracle.modularity];
        for (i, frac) in [0.0005, 0.001].into_iter().enumerate() {
            let batch = churn(g, 0xD157 + i as u64, frac);
            let (patched, _) = apply_delta(g, &batch).expect("churn applies");
            ref_qs.push(louvain_gpu(&Device::k40m(), &patched, &cfg).expect("ref run").modularity);
        }
        let spread = ref_qs.iter().cloned().fold(f64::MIN, f64::max)
            - ref_qs.iter().cloned().fold(f64::MAX, f64::min);
        let allowance = DQ_BAND.max(spread);

        let mut dcfg = DistConfig::k40m(QUALITY_SHARDS);
        dcfg.gpu = cfg;
        dcfg.device.global_mem_bytes = device_bytes_for(g, &[QUALITY_SHARDS]);
        let t0 = Instant::now();
        let r = louvain_sharded(g, &dcfg).expect("sharded run");
        let wall = t0.elapsed().as_secs_f64();
        lost_labels += r.telemetry.lost_labels;
        ownership_violations += r.telemetry.ownership_violations;
        let deficit = (oracle.modularity - r.modularity).max(0.0);
        max_deficit = max_deficit.max(deficit);
        if deficit > allowance {
            deficit_ok = false;
        }
        t.row(vec![
            spec.name.to_string(),
            format!("{:.1}M", footprint as f64 / 1e6),
            format!("{:.1}M", dcfg.device.global_mem_bytes as f64 / 1e6),
            format!("{:.2}%", r.telemetry.cut_fraction * 100.0),
            r.telemetry.strategy.to_string(),
            f4(oracle.modularity),
            f4(r.modularity),
            format!("{deficit:.3e}"),
            format!("{allowance:.3e}"),
            r.telemetry.exchange_rounds.to_string(),
            format!("{:.1}", r.telemetry.ghost_bytes as f64 / 1024.0),
        ]);
        if !quality_entries.is_empty() {
            quality_entries.push(',');
        }
        quality_entries.push_str(&format!(
            "\n    {{\n      \"graph\": \"{name}\",\n      \"vertices\": {n},\n      \
             \"arcs\": {arcs},\n      \"footprint_bytes\": {footprint},\n      \
             \"device_bytes\": {dev_bytes},\n      \"num_shards\": {QUALITY_SHARDS},\n      \
             \"cut_fraction\": {cut:.6},\n      \"strategy\": \"{strategy}\",\n      \
             \"oracle_modularity\": {oq:.15},\n      \"sharded_modularity\": {sq:.15},\n      \
             \"reference_spread\": {spread:.3e},\n      \"allowance\": {allowance:.3e},\n      \
             \"deficit\": {deficit:.3e},\n      \"levels\": {levels},\n      \
             \"sharded_levels\": {slevels},\n      \"exchange_rounds\": {rounds},\n      \
             \"ghost_updates\": {gup},\n      \"ghost_bytes\": {gbytes},\n      \
             \"resident_ghosts\": {ghosts},\n      \"max_shard_bytes\": {msb},\n      \
             \"wall_seconds\": {wall:.6},\n      \"ok\": {ok}\n    }}",
            name = spec.name,
            n = g.num_vertices(),
            arcs = g.num_arcs(),
            dev_bytes = dcfg.device.global_mem_bytes,
            cut = r.telemetry.cut_fraction,
            strategy = r.telemetry.strategy,
            oq = oracle.modularity,
            sq = r.modularity,
            levels = r.telemetry.levels,
            slevels = r.telemetry.sharded_levels,
            rounds = r.telemetry.exchange_rounds,
            gup = r.telemetry.ghost_updates,
            gbytes = r.telemetry.ghost_bytes,
            ghosts = r.telemetry.resident_ghosts,
            msb = r.telemetry.max_shard_bytes,
            ok = deficit <= allowance,
        ));
        println!(
            "  {}: oracle {:.4} sharded {:.4}, deficit {deficit:.3e} vs allowance \
             {allowance:.3e} ({})",
            spec.name,
            oracle.modularity,
            r.modularity,
            if deficit <= allowance { "ok" } else { "EXCEEDED" },
        );
    }
    t.print();

    // -- phase 2: bit-identity matrix on a dedicated out-of-core graph -------
    let (rmat_scale, edge_factor) = match scale {
        Scale::Tiny => (12, 8),
        Scale::Small => (14, 8),
        Scale::Medium => (16, 12),
        Scale::Large => (18, 16),
        Scale::Huge => (21, 16),
    };
    let g = rmat(rmat_scale, edge_factor, RmatParams::GRAPH500, 0xD157);
    let footprint = estimated_device_bytes(&g);
    let dev_bytes = device_bytes_for(&g, &[2, 4]);
    println!(
        "\nidentity graph: rmat-{rmat_scale} ({} vertices, {} arcs, footprint {:.1} MB, \
         device {:.1} MB)",
        g.num_vertices(),
        g.num_arcs(),
        footprint as f64 / 1e6,
        dev_bytes as f64 / 1e6,
    );
    let mut t2 = Table::new(
        "Bit-identity matrix: shards x worker threads (native-parallel backend)".to_string(),
        &["shards", "threads", "Q", "wall[s]", "TEPS", "rounds", "ghost KiB", "lost", "ownership"],
    );
    let mut cells = String::new();
    let mut outputs: Vec<(Vec<u32>, u64)> = Vec::new();
    for shards in [2usize, 4] {
        for threads in [1usize, 8] {
            let mut dcfg = DistConfig::k40m(shards);
            dcfg.gpu = cfg;
            dcfg.device.global_mem_bytes = dev_bytes;
            dcfg.device = dcfg.device.with_profile(Profile::Parallel).with_threads(threads);
            let t0 = Instant::now();
            let r = louvain_sharded(&g, &dcfg).expect("identity run");
            let wall = t0.elapsed().as_secs_f64();
            let teps = g.num_arcs() as f64 / r.telemetry.first_superstep.as_secs_f64().max(1e-12);
            lost_labels += r.telemetry.lost_labels;
            ownership_violations += r.telemetry.ownership_violations;
            t2.row(vec![
                shards.to_string(),
                threads.to_string(),
                f4(r.modularity),
                format!("{wall:.4}"),
                format!("{teps:.3e}"),
                r.telemetry.exchange_rounds.to_string(),
                format!("{:.1}", r.telemetry.ghost_bytes as f64 / 1024.0),
                r.telemetry.lost_labels.to_string(),
                r.telemetry.ownership_violations.to_string(),
            ]);
            if !cells.is_empty() {
                cells.push(',');
            }
            cells.push_str(&format!(
                "\n      {{ \"shards\": {shards}, \"threads\": {threads}, \
                 \"modularity\": {q:.15}, \"wall_seconds\": {wall:.6}, \
                 \"first_superstep_teps\": {teps:.6e}, \"exchange_rounds\": {rounds}, \
                 \"ghost_updates\": {gup}, \"ghost_bytes\": {gbytes}, \
                 \"cut_fraction\": {cut:.6}, \"lost_labels\": {lost}, \
                 \"ownership_violations\": {own} }}",
                q = r.modularity,
                rounds = r.telemetry.exchange_rounds,
                gup = r.telemetry.ghost_updates,
                gbytes = r.telemetry.ghost_bytes,
                cut = r.telemetry.cut_fraction,
                lost = r.telemetry.lost_labels,
                own = r.telemetry.ownership_violations,
            ));
            outputs.push((r.partition.into_vec(), r.modularity.to_bits()));
        }
    }
    t2.print();
    let bit_identical = outputs.windows(2).all(|w| w[0] == w[1]);
    let exchange_ok = lost_labels == 0 && ownership_violations == 0;
    let gated = scale >= Scale::Medium;
    let quality_ok = !gated || deficit_ok;
    println!(
        "dist: bit_identical={bit_identical}, lost_labels={lost_labels}, \
         ownership_violations={ownership_violations}, max quality deficit {max_deficit:.3e} \
         (gate {} at this scale)",
        if gated { "enforced" } else { "informational" },
    );

    let json = format!(
        "{{\n  \"experiment\": \"dist\",\n  \"scale\": \"{scale:?}\",\n  \
         \"device\": \"tesla_k40m ({MEM_FRACTION} x footprint)\",\n  \
         \"dq_band\": {DQ_BAND:.0e},\n  \"quality\": [{quality_entries}\n  ],\n  \
         \"identity\": {{\n    \"graph\": \"rmat-{rmat_scale}\",\n    \
         \"vertices\": {n},\n    \"arcs\": {arcs},\n    \
         \"footprint_bytes\": {footprint},\n    \"device_bytes\": {dev_bytes},\n    \
         \"cells\": [{cells}\n    ],\n    \"bit_identical\": {bit_identical}\n  }},\n  \
         \"summary\": {{\n    \"max_quality_deficit\": {max_deficit:.3e},\n    \
         \"lost_labels\": {lost_labels},\n    \
         \"ownership_violations\": {ownership_violations},\n    \"gated\": {gated},\n    \
         \"quality_ok\": {quality_ok},\n    \"exchange_ok\": {exchange_ok},\n    \
         \"bit_identical\": {bit_identical}\n  }},\n  \"ok\": {ok}\n}}\n",
        n = g.num_vertices(),
        arcs = g.num_arcs(),
        ok = quality_ok && exchange_ok && bit_identical,
    );
    std::fs::create_dir_all(out).ok();
    let path = out.join("BENCH_dist.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    if !bit_identical {
        eprintln!(
            "error: sharded Louvain diverged across the shard-count x thread-count matrix — \
             the halo exchange must be deterministic"
        );
        std::process::exit(1);
    }
    if !exchange_ok {
        eprintln!(
            "error: the halo exchange lost {lost_labels} ghost label(s) and recorded \
             {ownership_violations} ownership violation(s); both must be zero"
        );
        std::process::exit(1);
    }
    if !quality_ok {
        eprintln!(
            "error: sharded modularity fell {max_deficit:.3e} short of the single-device \
             oracle on some workload, beyond that graph's reference dispersion \
             (floor {DQ_BAND:.0e})"
        );
        std::process::exit(1);
    }
}

/// Median of `xs` (sorts in place; 0.0 when empty). Even lengths take the
/// mean of the middle pair.
fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn subset_resolves() {
        assert!(!comparison_subset().is_empty());
    }
}
