//! Plain-text table rendering and CSV output for the reproduction harness.
//!
//! Every experiment prints an aligned table to stdout (the rows/series the
//! paper's tables and figures report) and can persist the same data as CSV
//! under `results/`.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (i, cell) in cells.iter().enumerate() {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                // Right-align numeric-looking cells, left-align the rest.
                let numeric =
                    cell.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+')
                        && cell.chars().all(|c| !c.is_ascii_alphabetic() || c == 'e' || c == 'x');
                if numeric {
                    let _ = write!(out, "{cell:>w$}", w = widths[i]);
                } else {
                    let _ = write!(out, "{cell:<w$}", w = widths[i]);
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serializes as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV next to the other experiment outputs.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Formats a duration in seconds with sensible precision.
pub fn secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Formats a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a speedup ratio.
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_counts() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "200".into()]);
        assert_eq!(t.len(), 2);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long-name"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["has,comma".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.50");
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(ratio(3.12), "3.1x");
        assert_eq!(ratio(250.0), "250x");
    }
}
