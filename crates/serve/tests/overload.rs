//! Overload and recovery tests: the expiry checkpoint taxonomy, SLO-aware
//! shedding, device circuit breakers with failover, and cache snapshot
//! warm/cold starts.
//!
//! Like `serve.rs`, most tests drive the server in manual mode
//! (`workers = 0`) so each checkpoint is hit deterministically by the test
//! thread. Worker threads appear only in the concurrent accounting test,
//! which is about settlement under contention rather than any particular
//! interleaving.

use cd_gpusim::{FaultPlan, Profile};
use cd_graph::{Csr, GraphBuilder, VertexId};
use cd_serve::{
    BreakerConfig, ExecPath, JobOptions, JobOutcome, JobStatus, Rejected, Server, ServerConfig,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn ring(n: usize) -> Arc<Csr> {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as VertexId, ((v + 1) % n) as VertexId, 1.0);
    }
    Arc::new(b.build())
}

fn manual() -> Server {
    Server::new(ServerConfig::test_manual())
}

/// A scratch path under the target-adjacent temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cd-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

// ---------------------------------------------------------------- expiry --

#[test]
fn passed_deadline_expires_exactly_once_at_the_sweep_checkpoint() {
    let server = manual();
    let id = server.submit(ring(90), JobOptions::default().with_deadline(Duration::from_millis(2)));
    let id = id.unwrap();
    std::thread::sleep(Duration::from_millis(10));

    // The sweep finds the stale job without anything being dequeued.
    assert_eq!(server.sweep_expired(), 1);
    assert_eq!(server.status(id), Some(JobStatus::Expired));
    match server.await_result(id) {
        JobOutcome::Expired { stage: None } => {}
        other => panic!("expected queue-level expiry, got {other:?}"),
    }
    // Exactly once: a second sweep and a drain both find nothing.
    assert_eq!(server.sweep_expired(), 0);
    assert!(!server.process_one());
    let m = server.metrics();
    assert_eq!((m.expired, m.expired_sweep, m.expired_dequeue), (1, 1, 0));
    assert_eq!(m.queue_depth, 0);
}

#[test]
fn passed_deadline_expires_exactly_once_at_the_dequeue_checkpoint() {
    let server = manual();
    let id = server.submit(ring(91), JobOptions::default().with_deadline(Duration::from_millis(2)));
    let id = id.unwrap();
    std::thread::sleep(Duration::from_millis(10));

    // No sweep: the dequeue checkpoint catches it on the next dispatch.
    server.run_until_idle();
    match server.await_result(id) {
        JobOutcome::Expired { stage: None } => {}
        other => panic!("expected dequeue-level expiry, got {other:?}"),
    }
    assert_eq!(server.sweep_expired(), 0);
    let m = server.metrics();
    assert_eq!((m.expired, m.expired_dequeue, m.expired_sweep), (1, 1, 0));
}

#[test]
fn expiry_checkpoint_counters_partition_the_total() {
    // One job per checkpoint: admission (zero deadline), sweep, dequeue.
    let server = manual();
    let at_admission =
        server.submit(ring(92), JobOptions::default().with_deadline(Duration::ZERO)).unwrap();
    let at_sweep = server
        .submit(ring(93), JobOptions::default().with_deadline(Duration::from_millis(2)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(server.sweep_expired(), 1);
    let at_dequeue = server
        .submit(ring(94), JobOptions::default().with_deadline(Duration::from_millis(2)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    server.run_until_idle();

    for id in [at_admission, at_sweep, at_dequeue] {
        assert_eq!(server.status(id), Some(JobStatus::Expired));
    }
    let m = server.metrics();
    assert_eq!((m.expired_admission, m.expired_sweep, m.expired_dequeue), (1, 1, 1));
    assert_eq!(
        m.expired,
        m.expired_admission
            + m.expired_sweep
            + m.expired_dequeue
            + m.expired_stage
            + m.expired_settle
    );
    assert_eq!(m.expired, 3);
}

#[test]
fn concurrent_submit_and_cancel_settle_every_job_exactly_once() {
    // Worker-mode server under a burst of submissions with mixed deadlines
    // while another thread cancels half of them. The invariant under test
    // is accounting: every admitted job reaches exactly one terminal state
    // and the expiry checkpoint counters sum to the expiry total.
    let server = Server::new(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        sweep_interval: Duration::from_millis(1),
        ..ServerConfig::test_manual()
    });
    let mut ids = Vec::new();
    for i in 0..24usize {
        let opts = match i % 3 {
            0 => JobOptions::default(),
            1 => JobOptions::default().with_deadline(Duration::from_millis(1)),
            _ => JobOptions::default().with_deadline(Duration::from_secs(30)),
        };
        let id = server.submit(ring(100 + i), opts).unwrap();
        ids.push(id);
    }
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for (i, &id) in ids.iter().enumerate() {
                if i % 2 == 0 {
                    server.cancel(id);
                }
            }
        });
    });
    let outcomes: Vec<_> = ids.iter().map(|&id| server.await_result(id)).collect();
    // Terminal means terminal: a settled job's status never changes again.
    for (&id, outcome) in ids.iter().zip(&outcomes) {
        assert_eq!(server.status(id), Some(outcome.status()), "job {id:?} re-settled");
    }
    let m = server.metrics();
    assert_eq!(m.completed + m.cancelled + m.expired + m.failed, ids.len() as u64);
    assert_eq!(
        m.expired,
        m.expired_admission
            + m.expired_sweep
            + m.expired_dequeue
            + m.expired_stage
            + m.expired_settle
    );
    assert_eq!(m.failed, 0);
}

// -------------------------------------------------------------- shedding --

#[test]
fn warmed_estimator_sheds_unattainable_deadlines_at_the_door() {
    let server = manual();
    // Warm the execution-time estimator with one real run.
    let warm = server.submit(ring(64), JobOptions::default()).unwrap();
    server.run_until_idle();
    assert_eq!(server.status(warm), Some(JobStatus::Completed));
    assert_eq!(server.metrics().exec.count, 1);

    // A graph ~100× the warmup footprint cannot finish inside 1 ms; the
    // submission is refused synchronously with the honest reason.
    let big = ring(6400);
    match server.submit(big, JobOptions::default().with_deadline(Duration::from_millis(1))) {
        Err(Rejected::WontMeetDeadline { estimated, budget }) => {
            assert!(estimated > budget, "shed reason must be estimate > budget");
        }
        other => panic!("expected an SLO rejection, got {other:?}"),
    }
    let m = server.metrics();
    assert_eq!((m.rejected, m.rejected_slo), (1, 1));
    // Nothing was queued and nothing expired — the job never existed.
    assert_eq!((m.queue_depth, m.expired), (0, 0));
}

#[test]
fn cold_estimator_never_sheds() {
    // No run has completed: there is no evidence, so even an absurd
    // deadline is admitted (and expires at a checkpoint instead).
    let server = manual();
    let id = server
        .submit(ring(6400), JobOptions::default().with_deadline(Duration::from_millis(1)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(5));
    server.run_until_idle();
    assert_eq!(server.status(id), Some(JobStatus::Expired));
    assert_eq!(server.metrics().rejected_slo, 0);
}

// --------------------------------------------------------------- breaker --

/// A fault plan that kills every run on the device it is armed on.
fn lethal_plan() -> FaultPlan {
    FaultPlan::seeded(7).with_abort_rate(1.0)
}

#[test]
fn breaker_quarantines_faulty_device_and_failover_is_bit_identical() {
    let graphs: Vec<_> = (300..304).map(ring).collect();

    // Baseline: the same jobs fault-free.
    let baseline = manual();
    let expect: Vec<_> = graphs
        .iter()
        .map(|g| {
            let id = baseline
                .submit(Arc::clone(g), JobOptions::default().with_profile(Profile::Instrumented))
                .unwrap();
            baseline.run_until_idle();
            let outcome = baseline.await_result(id);
            let r = outcome.result().expect("baseline completes");
            (r.modularity.to_bits(), r.partition.as_slice().to_vec())
        })
        .collect();

    // Faulted: every job carries a plan that breaks device 0. With the
    // threshold at 3, jobs 1–3 fail on slot 0 and fail over to slot 1;
    // job 4 finds slot 0 quarantined and runs clean on slot 1. The backoff
    // is pinned far beyond the test's runtime so the quarantine cannot
    // lapse (and re-trip) between jobs on a slow debug build.
    let server = Server::new(ServerConfig {
        breaker: BreakerConfig {
            backoff_base: Duration::from_secs(600),
            ..BreakerConfig::default()
        },
        ..ServerConfig::test_manual()
    });
    let opts =
        JobOptions::default().with_profile(Profile::Instrumented).with_fault(0, lethal_plan());
    for (g, (q_bits, labels)) in graphs.iter().zip(&expect) {
        let id = server.submit(Arc::clone(g), opts).unwrap();
        server.run_until_idle();
        let outcome = server.await_result(id);
        let r = outcome.result().expect("failover completes");
        assert_eq!(r.modularity.to_bits(), *q_bits, "failover changed the result");
        assert_eq!(r.partition.as_slice(), labels.as_slice());
        match outcome {
            JobOutcome::Completed { path: ExecPath::FailedOver { device, attempts }, .. } => {
                assert_eq!(device, 1);
                assert!(attempts >= 2);
            }
            JobOutcome::Completed { path: ExecPath::SingleDevice { device }, .. } => {
                // Only possible once the breaker has opened.
                assert_eq!(device, 1);
                assert!(server.metrics().breaker_trips >= 1);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let m = server.metrics();
    assert_eq!(m.breaker_trips, 1);
    assert_eq!(m.quarantined_devices, 1);
    assert_eq!(m.failed, 0);
    assert_eq!(m.completed, graphs.len() as u64);
    assert_eq!(m.failed_over_jobs, 3);
    assert!(m.retried_jobs >= 3);
}

#[test]
fn quarantined_device_is_reinstated_after_backoff() {
    let server = Server::new(ServerConfig {
        breaker: BreakerConfig {
            failure_threshold: 1,
            backoff_base: Duration::from_millis(5),
            ..BreakerConfig::default()
        },
        ..ServerConfig::test_manual()
    });
    let opts =
        JobOptions::default().with_profile(Profile::Instrumented).with_fault(0, lethal_plan());
    let id = server.submit(ring(310), opts).unwrap();
    server.run_until_idle();
    // Threshold 1: the single failure trips the breaker; the job fails over.
    match server.await_result(id) {
        JobOutcome::Completed { path: ExecPath::FailedOver { device: 1, .. }, .. } => {}
        other => panic!("expected failover, got {other:?}"),
    }
    assert_eq!(server.metrics().breaker_trips, 1);

    // After the backoff elapses the next placement lands on slot 0
    // (half-open) and its success fully closes the breaker.
    std::thread::sleep(Duration::from_millis(20));
    let clean = server.submit(ring(311), JobOptions::default()).unwrap();
    server.run_until_idle();
    match server.await_result(clean) {
        JobOutcome::Completed { path: ExecPath::SingleDevice { device: 0 }, .. } => {}
        other => panic!("expected a clean run on the reinstated device, got {other:?}"),
    }
    let m = server.metrics();
    assert_eq!(m.breaker_reinstatements, 1);
    assert_eq!(m.quarantined_devices, 0);
}

// ------------------------------------------------------------- snapshots --

#[test]
fn server_warm_starts_from_a_snapshot_file() {
    let path = scratch("warm.snap");
    let first = manual();
    let graphs: Vec<_> = (400..403).map(ring).collect();
    let expect: Vec<_> = graphs
        .iter()
        .map(|g| {
            let id = first.submit(Arc::clone(g), JobOptions::default()).unwrap();
            first.run_until_idle();
            let outcome = first.await_result(id);
            outcome.result().expect("completes").modularity.to_bits()
        })
        .collect();
    let entries = first.snapshot_cache_to(&path).expect("snapshot written");
    assert_eq!(entries, graphs.len());

    // A fresh server restores the snapshot and answers every key from it.
    let second =
        Server::new(ServerConfig { cache_snapshot: Some(path), ..ServerConfig::test_manual() });
    assert_eq!(second.metrics().cache_restored_entries, graphs.len() as u64);
    for (g, q_bits) in graphs.iter().zip(&expect) {
        let id = second.submit(Arc::clone(g), JobOptions::default()).unwrap();
        match second.await_result(id) {
            JobOutcome::Completed { path: ExecPath::CacheHit, result } => {
                assert_eq!(result.modularity.to_bits(), *q_bits);
            }
            other => panic!("warm start should hit the cache, got {other:?}"),
        }
    }
    let m = second.metrics();
    assert_eq!((m.cache.hits, m.cache.misses), (graphs.len() as u64, 0));
    assert_eq!(m.cache_restore_failures, 0);
}

#[test]
fn corrupt_snapshot_cold_starts_cleanly() {
    // Garbage, a truncated real snapshot, and a bit-flipped real snapshot:
    // each restore fails, is counted, and leaves a working empty cache.
    let donor = manual();
    let id = donor.submit(ring(420), JobOptions::default()).unwrap();
    donor.run_until_idle();
    donor.await_result(id);
    let real = donor.snapshot_cache();

    let mut flipped = real.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("garbage", b"not a snapshot at all".to_vec()),
        ("truncated", real[..real.len() / 2].to_vec()),
        ("bitflip", flipped),
    ];
    for (name, bytes) in cases {
        let path = scratch(&format!("corrupt-{name}.snap"));
        std::fs::write(&path, &bytes).unwrap();
        let server =
            Server::new(ServerConfig { cache_snapshot: Some(path), ..ServerConfig::test_manual() });
        let m = server.metrics();
        assert_eq!((m.cache_restore_failures, m.cache_restored_entries), (1, 0), "case {name}");
        // The server is fully functional on a clean cold cache.
        let id = server.submit(ring(421), JobOptions::default()).unwrap();
        server.run_until_idle();
        assert_eq!(server.status(id), Some(JobStatus::Completed), "case {name}");
    }
}

#[test]
fn missing_snapshot_path_is_a_silent_cold_start() {
    let server = Server::new(ServerConfig {
        cache_snapshot: Some(scratch("never-written.snap")),
        ..ServerConfig::test_manual()
    });
    let m = server.metrics();
    assert_eq!((m.cache_restore_failures, m.cache_restored_entries), (0, 0));
}
