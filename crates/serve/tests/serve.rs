//! End-to-end tests of the serving layer: admission control, scheduling
//! order, the cooperative lifecycle, result reuse, and trace determinism.
//!
//! Most tests run the server in *manual mode* (`workers = 0`): execution
//! happens only inside `process_one`, on the test thread, so every
//! interleaving is chosen by the test — the concurrency-sensitive paths
//! (priority dequeue, queue-full rejection, cancellation, promotion) are
//! exercised deterministically. Worker threads appear only where the test
//! is about them (mid-run cancellation, the seeded trace).

use cd_gpusim::{DeviceConfig, Profile};
use cd_graph::{gen::cliques, Csr, GraphBuilder, VertexId};
use cd_serve::{
    run_trace, ExecPath, JobOptions, JobOutcome, JobStatus, Priority, Rejected, Server,
    ServerConfig, TraceConfig,
};
use cd_workloads::Scale;
use std::sync::Arc;
use std::time::Duration;

/// A ring of `n` vertices — cheap to run, and every distinct `n` is a
/// distinct content key.
fn ring(n: usize) -> Arc<Csr> {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as VertexId, ((v + 1) % n) as VertexId, 1.0);
    }
    Arc::new(b.build())
}

fn manual(queue_capacity: usize) -> Server {
    Server::new(ServerConfig { queue_capacity, ..ServerConfig::test_manual() })
}

#[test]
fn queue_full_rejects_new_content_but_not_reuse() {
    let server = manual(2);
    let (g1, g2, g3, g4) = (ring(64), ring(65), ring(66), ring(67));
    let opts = JobOptions::default();

    let id1 = server.submit(Arc::clone(&g1), opts).unwrap();
    let id2 = server.submit(Arc::clone(&g2), opts).unwrap();
    // Queue is at capacity: new content bounces with the explicit signal.
    assert_eq!(server.submit(Arc::clone(&g3), opts), Err(Rejected::QueueFull { capacity: 2 }));
    // Identical in-flight content coalesces instead — it consumes no queue
    // slot, so backpressure does not apply.
    let id1b = server.submit(Arc::clone(&g1), opts).unwrap();

    server.run_until_idle();
    assert_eq!(server.await_result(id1).status(), JobStatus::Completed);
    assert_eq!(server.await_result(id2).status(), JobStatus::Completed);
    match server.await_result(id1b) {
        JobOutcome::Completed { path: ExecPath::Coalesced, .. } => {}
        other => panic!("coalesced submission completed as {other:?}"),
    }

    // Refill the queue, then submit already-cached content: a cache hit
    // completes synchronously and is exempt from the bound too.
    server.submit(Arc::clone(&g3), opts).unwrap();
    server.submit(Arc::clone(&g4), opts).unwrap();
    let cached = server.submit(g1, opts).unwrap();
    match server.await_result(cached) {
        JobOutcome::Completed { path: ExecPath::CacheHit, .. } => {}
        other => panic!("cached submission completed as {other:?}"),
    }
    let m = server.metrics();
    assert_eq!(m.rejected, 1);
    assert_eq!(m.cache.coalesced, 1);
    assert_eq!(m.cache.hits, 1);
    server.run_until_idle();
}

#[test]
fn dequeue_is_priority_then_fifo() {
    let server = manual(16);
    let low = server.submit(ring(70), JobOptions::default().with_priority(Priority::Low)).unwrap();
    let norm1 = server.submit(ring(71), JobOptions::default()).unwrap();
    let norm2 = server.submit(ring(72), JobOptions::default()).unwrap();
    let high =
        server.submit(ring(73), JobOptions::default().with_priority(Priority::High)).unwrap();

    // One dispatch at a time; completion order is the dequeue order.
    let mut order = Vec::new();
    while server.process_one() {
        for &id in &[low, norm1, norm2, high] {
            if !order.contains(&id) && server.status(id) == Some(JobStatus::Completed) {
                order.push(id);
            }
        }
    }
    // Strict priority first; FIFO (submission order) within Normal.
    assert_eq!(order, vec![high, norm1, norm2, low]);
}

#[test]
fn zero_deadline_expires_at_the_admission_checkpoint() {
    let server = manual(16);
    let id = server.submit(ring(80), JobOptions::default().with_deadline(Duration::ZERO)).unwrap();
    // Dead on arrival: settled synchronously, never occupying a queue slot.
    assert_eq!(server.status(id), Some(JobStatus::Expired));
    match server.await_result(id) {
        JobOutcome::Expired { stage: None } => {}
        other => panic!("expected admission-level expiry, got {other:?}"),
    }
    let m = server.metrics();
    assert_eq!((m.expired, m.expired_admission, m.queue_depth), (1, 1, 0));
}

#[test]
fn short_deadline_expires_at_a_stage_checkpoint() {
    // road-usa at Tiny runs ~9 stages over >10 ms even in release builds;
    // a 5 ms deadline survives the dequeue checkpoint (manual mode
    // dispatches immediately) and trips at a later stage gate.
    let graph = Arc::new(cd_workloads::load("road-usa", Scale::Tiny).unwrap().graph);
    let server = manual(16);
    let id = server
        .submit(graph, JobOptions::default().with_deadline(Duration::from_millis(5)))
        .unwrap();
    server.run_until_idle();
    match server.await_result(id) {
        JobOutcome::Expired { stage: Some(_) } => {}
        other => panic!("expected a stage-checkpoint expiry, got {other:?}"),
    }
}

#[test]
fn cancel_while_queued_resolves_immediately_and_promotes_followers() {
    let server = manual(16);
    let g = ring(90);
    let leader = server.submit(Arc::clone(&g), JobOptions::default()).unwrap();
    let follower = server.submit(Arc::clone(&g), JobOptions::default()).unwrap();
    assert_eq!(server.status(follower), Some(JobStatus::Queued));

    // Cancelling the queued leader settles it without any worker running…
    assert!(server.cancel(leader));
    match server.await_result(leader) {
        JobOutcome::Cancelled { stage: None } => {}
        other => panic!("expected queue-level cancel, got {other:?}"),
    }
    // …and a second cancel is too late.
    assert!(!server.cancel(leader));

    // The coalesced follower is promoted to leader and computes normally.
    server.run_until_idle();
    match server.await_result(follower) {
        JobOutcome::Completed { path: ExecPath::SingleDevice { .. }, .. } => {}
        other => panic!("promoted follower should compute its own result, got {other:?}"),
    }
    let m = server.metrics();
    assert_eq!((m.cancelled, m.completed), (1, 1));
}

#[test]
fn cancel_mid_run_aborts_at_a_stage_checkpoint() {
    // One worker executes; the test thread cancels as soon as the job is
    // observed Running. The flag is then seen at the next stage gate of a
    // multi-stage run (road-usa: ~9 stages).
    let mut server = Server::new(ServerConfig { workers: 1, ..ServerConfig::test_manual() });
    let graph = Arc::new(cd_workloads::load("road-usa", Scale::Tiny).unwrap().graph);
    let id = server.submit(graph, JobOptions::default()).unwrap();
    while server.status(id) != Some(JobStatus::Running) {
        std::thread::yield_now();
    }
    assert!(server.cancel(id));
    match server.await_result(id) {
        JobOutcome::Cancelled { stage: Some(_) } => {}
        other => panic!("expected a stage-checkpoint cancel, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn coalescing_computes_once_and_shares_the_result() {
    let server = manual(16);
    let g = ring(100);
    let a = server.submit(Arc::clone(&g), JobOptions::default()).unwrap();
    let b = server.submit(Arc::clone(&g), JobOptions::default()).unwrap();
    let c = server.submit(Arc::clone(&g), JobOptions::default()).unwrap();

    // A single dispatch settles all three.
    assert!(server.process_one());
    assert!(!server.process_one(), "one computation serves every twin");

    let ra = server.await_result(a);
    let rb = server.await_result(b);
    let rc = server.await_result(c);
    let (res_a, res_b, res_c) = (ra.result().unwrap(), rb.result().unwrap(), rc.result().unwrap());
    assert!(Arc::ptr_eq(res_a, res_b) && Arc::ptr_eq(res_a, res_c), "one shared Arc");
    match (rb, rc) {
        (
            JobOutcome::Completed { path: ExecPath::Coalesced, .. },
            JobOutcome::Completed { path: ExecPath::Coalesced, .. },
        ) => {}
        other => panic!("followers should report the coalesced path, got {other:?}"),
    }
    let m = server.metrics();
    assert_eq!(m.cache.coalesced, 2);
    assert_eq!(m.completed, 3);
    assert_eq!(m.devices.iter().map(|d| d.jobs_completed).sum::<u64>(), 1);
}

#[test]
fn cache_hits_are_bit_identical_to_cold_runs_across_profiles() {
    let graph = Arc::new(cliques(6, 8, true));
    let mut baseline: Option<(u64, Vec<VertexId>)> = None;
    for profile in [Profile::Instrumented, Profile::Fast, Profile::Racecheck, Profile::Parallel] {
        let opts = JobOptions::default().with_profile(profile);

        // Cold run on a fresh server.
        let server = manual(16);
        let cold_id = server.submit(Arc::clone(&graph), opts).unwrap();
        server.run_until_idle();
        let cold = server.await_result(cold_id);
        let cold_res = cold.result().expect("cold run completes").clone();

        // Cache hit on the same server: the identical Arc.
        let hit_id = server.submit(Arc::clone(&graph), opts).unwrap();
        let hit = server.await_result(hit_id);
        assert!(Arc::ptr_eq(&cold_res, hit.result().unwrap()));

        // Cold run on a *second* fresh server: bit-identical labels and Q,
        // proving the cached value equals what a fresh computation under
        // the same options would produce.
        let server2 = manual(16);
        let cold2_id = server2.submit(Arc::clone(&graph), opts).unwrap();
        server2.run_until_idle();
        let cold2 = server2.await_result(cold2_id);
        let cold2_res = cold2.result().expect("second cold run completes");
        assert_eq!(cold_res.modularity.to_bits(), cold2_res.modularity.to_bits());
        assert_eq!(cold_res.partition, cold2_res.partition);

        // Backend equivalence: every profile agrees bit-for-bit.
        let labels = cold_res.partition.as_slice().to_vec();
        match &baseline {
            None => baseline = Some((cold_res.modularity.to_bits(), labels)),
            Some((q_bits, base_labels)) => {
                assert_eq!(*q_bits, cold_res.modularity.to_bits(), "{profile:?} changes Q");
                assert_eq!(base_labels, &labels, "{profile:?} changes labels");
            }
        }
    }
}

#[test]
fn profiles_share_one_cache_line() {
    // The execution profile is scheduling, not semantics: the four-way
    // equivalence suite makes results bit-identical across profiles, so the
    // content key deliberately ignores the profile. A job computed under one
    // profile must therefore warm the cache for every other — resubmitting
    // under a different profile is a cache hit, not a recompute.
    let graph = Arc::new(cliques(6, 8, true));
    let server = manual(16);
    let cold_id = server
        .submit(Arc::clone(&graph), JobOptions::default().with_profile(Profile::Fast))
        .unwrap();
    server.run_until_idle();
    let cold_res = server.await_result(cold_id).result().expect("cold run completes").clone();

    for profile in [Profile::Instrumented, Profile::Racecheck, Profile::Parallel] {
        let id =
            server.submit(Arc::clone(&graph), JobOptions::default().with_profile(profile)).unwrap();
        match server.await_result(id) {
            JobOutcome::Completed { path: ExecPath::CacheHit, result } => {
                assert!(Arc::ptr_eq(&cold_res, &result), "{profile:?} should share the Arc");
            }
            other => panic!("{profile:?} resubmission should hit the cache, got {other:?}"),
        }
    }
    let m = server.metrics();
    assert_eq!((m.cache.misses, m.cache.hits), (1, 3), "one compute serves all four profiles");
}

#[test]
fn oversized_jobs_run_the_pooled_multi_device_path() {
    // Shrink device memory below the workload's footprint so placement
    // must take the exclusive multi-device path.
    let graph = Arc::new(cd_workloads::load("road-usa", Scale::Tiny).unwrap().graph);
    let footprint = cd_core::estimated_device_bytes(&graph);
    let mut device = DeviceConfig::tesla_k40m();
    device.global_mem_bytes = footprint * 3 / 4;
    let server = Server::new(ServerConfig {
        workers: 0,
        num_devices: 2,
        device,
        ..ServerConfig::test_manual()
    });
    let id = server.submit(graph, JobOptions::default()).unwrap();
    server.run_until_idle();
    match server.await_result(id) {
        JobOutcome::Completed { path: ExecPath::DevicePool { devices: 2, .. }, result } => {
            assert!(result.modularity > 0.0);
        }
        other => panic!("expected the pooled path, got {other:?}"),
    }
    let m = server.metrics();
    assert_eq!(m.pooled_jobs, 1);
    // The pooled path is the sharded out-of-core engine: the job must be
    // counted as sharded, with actual halo exchange traffic on record.
    assert_eq!(m.sharded_jobs, 1);
    assert!(m.exchange_rounds > 0, "a sharded run supersteps at least once");
    assert!(m.ghost_bytes > 0, "cut edges must have produced ghost updates");
}

#[test]
fn pool_exhaustion_without_fallback_fails_with_a_typed_error() {
    // Memory far too small even for per-device blocks, and degradation
    // disabled: the failover ladder runs dry and the error propagates.
    let graph = Arc::new(cd_workloads::load("road-usa", Scale::Tiny).unwrap().graph);
    let mut device = DeviceConfig::tesla_k40m();
    device.global_mem_bytes = 4096;
    let server = Server::new(ServerConfig {
        workers: 0,
        num_devices: 2,
        device,
        sequential_fallback: false,
        ..ServerConfig::test_manual()
    });
    let id = server.submit(graph, JobOptions::default()).unwrap();
    server.run_until_idle();
    match server.await_result(id) {
        JobOutcome::Failed(err) => {
            // The typed chain stays intact through the service boundary.
            let _: &cd_core::GpuLouvainError = &err;
        }
        other => panic!("expected a typed failure, got {other:?}"),
    }
    assert_eq!(server.metrics().failed, 1);
}

#[test]
fn seeded_trace_is_deterministic_lossless_and_reuses_work() {
    let cfg = TraceConfig {
        seed: 7,
        clients: 4,
        passes: 2,
        duplicates: 2,
        scale: Scale::Tiny,
        workloads: vec!["com-dblp".into(), "cnr2000".into()],
        base: JobOptions::default(),
        vary_pruning: true,
        oversized: None,
    };
    let run = |cfg: &TraceConfig| {
        let mut server = Server::new(ServerConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServerConfig::test_manual()
        });
        let report = run_trace(&server, cfg).unwrap();
        server.shutdown();
        report
    };
    let a = run(&cfg);
    let b = run(&cfg);

    // 2 workloads × 2 pruning × 2 duplicates × 2 passes.
    assert_eq!(a.records.len(), 16);
    assert_eq!((a.lost, a.duplicated), (0, 0));
    assert_eq!((b.lost, b.duplicated), (0, 0));
    assert_eq!(a.completed(), 16);

    // Each of the 4 distinct content keys is computed exactly once; the
    // other 12 submissions reuse (cache hit or coalesced).
    let m = &a.metrics;
    assert_eq!(m.cache.hits + m.cache.coalesced, 12);
    assert_eq!(m.cache.misses, 4);
    assert!(a.results_consistent(), "reused results must be bit-identical");

    // Two replays of the same seed agree on every semantic outcome.
    assert_eq!(a.result_digest(), b.result_digest());
}
