//! Cross-algorithm serving tests: the portfolio selector must thread all
//! the way through the cache key, so no path — plain submission, request
//! coalescing, delta chains, or structural-hash promotion — can ever serve
//! one algorithm's partition to a request for another. All in manual mode
//! for deterministic interleavings.

use cd_gpusim::DeviceConfig;
use cd_graph::{Csr, DeltaBatch, DeltaBuilder, GraphBuilder, VertexId};
use cd_serve::{Algorithm, DeltaBase, ExecPath, JobOptions, JobOutcome, Server, ServerConfig};
use cd_workloads::Scale;
use std::sync::Arc;

fn ring(n: usize) -> Arc<Csr> {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as VertexId, ((v + 1) % n) as VertexId, 1.0);
    }
    Arc::new(b.build())
}

fn manual() -> Server {
    Server::new(ServerConfig::test_manual())
}

fn batch(n: usize) -> DeltaBatch {
    let mut b = DeltaBuilder::new(n);
    b.insert(0, (n / 2) as VertexId, 1.5).unwrap();
    b.delete(1, 2).unwrap();
    b.build()
}

fn completed(server: &Server, id: cd_serve::JobId) -> (Arc<cd_serve::ServeResult>, ExecPath) {
    match server.await_result(id) {
        JobOutcome::Completed { result, path } => (result, path),
        other => panic!("expected completion, got {other:?}"),
    }
}

#[test]
fn algorithms_never_share_a_cache_line() {
    // The same graph under every portfolio algorithm: each first submission
    // must compute (no cross-algorithm hit, no cross-algorithm coalescing),
    // and each *re*-submission must hit exactly its own entry.
    let server = manual();
    let g = ring(48);
    let mut firsts = Vec::new();
    for a in Algorithm::ALL {
        let opts = JobOptions::default().with_algorithm(a);
        let id = server.submit(Arc::clone(&g), opts).unwrap();
        server.run_until_idle();
        let (result, path) = completed(&server, id);
        assert!(
            matches!(path, ExecPath::SingleDevice { .. }),
            "{a}: first submission must compute, got {path:?}"
        );
        firsts.push(result);
    }
    // Pairwise distinct payloads: four computations, four Arcs.
    for i in 0..firsts.len() {
        for j in 0..i {
            assert!(
                !Arc::ptr_eq(&firsts[i], &firsts[j]),
                "{} and {} were served the same payload",
                Algorithm::ALL[i],
                Algorithm::ALL[j]
            );
        }
    }
    // Resubmission under each algorithm hands back that algorithm's own Arc.
    for (a, first) in Algorithm::ALL.into_iter().zip(&firsts) {
        let id = server.submit(Arc::clone(&g), JobOptions::default().with_algorithm(a)).unwrap();
        match server.await_result(id) {
            JobOutcome::Completed { result, path: ExecPath::CacheHit } => {
                assert!(Arc::ptr_eq(&result, first), "{a}: hit the wrong entry");
            }
            other => panic!("{a}: resubmission should hit its own cache line, got {other:?}"),
        }
    }
    let m = server.metrics();
    assert_eq!(m.exec.count, Algorithm::ALL.len(), "one compute per algorithm");
}

#[test]
fn inflight_coalescing_is_algorithm_scoped() {
    // Two queued submissions of the same graph under different algorithms
    // must both compute; a same-algorithm twin coalesces.
    let server = manual();
    let g = ring(40);
    let louvain = server.submit(Arc::clone(&g), JobOptions::default()).unwrap();
    let lpa = server
        .submit(Arc::clone(&g), JobOptions::default().with_algorithm(Algorithm::LpaSync))
        .unwrap();
    let lpa_twin = server
        .submit(Arc::clone(&g), JobOptions::default().with_algorithm(Algorithm::LpaSync))
        .unwrap();
    server.run_until_idle();
    let (r_louvain, p_louvain) = completed(&server, louvain);
    let (r_lpa, p_lpa) = completed(&server, lpa);
    let (r_twin, p_twin) = completed(&server, lpa_twin);
    assert!(!p_louvain.is_shared() && !p_lpa.is_shared(), "different algorithms both compute");
    assert_eq!(p_twin, ExecPath::Coalesced, "same algorithm coalesces");
    assert!(Arc::ptr_eq(&r_lpa, &r_twin));
    assert!(!Arc::ptr_eq(&r_louvain, &r_lpa));
}

#[test]
fn delta_promotion_does_not_leak_across_algorithms() {
    // A delta job computed under LPA promotes its result to the structural
    // hash of the patched graph — under *LPA's* options hash. A cold
    // Louvain submission of the independently built patched graph must
    // miss that entry and compute its own; a cold LPA submission hits it.
    let server = manual();
    let n = 56;
    let lpa = JobOptions::default().with_algorithm(Algorithm::LpaSync);
    let base = server.submit(ring(n), lpa).unwrap();
    server.run_until_idle();
    server.await_result(base);
    let d = server.submit_delta(DeltaBase::Job(base), &batch(n), lpa).unwrap();
    server.run_until_idle();
    let (lpa_result, _) = completed(&server, d);

    // The patched graph, built independently (bit-identical to the patch).
    let patched = || {
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            if (v, (v + 1) % n) == (1, 2) {
                continue;
            }
            b.add_edge(v as VertexId, ((v + 1) % n) as VertexId, 1.0);
        }
        b.add_edge(0, (n / 2) as VertexId, 1.5);
        Arc::new(b.build())
    };

    // Louvain on the patched graph: the promoted LPA entry must NOT answer.
    let cold_louvain = server.submit(patched(), JobOptions::default()).unwrap();
    server.run_until_idle();
    let (louvain_result, louvain_path) = completed(&server, cold_louvain);
    assert!(
        matches!(louvain_path, ExecPath::SingleDevice { .. }),
        "Louvain must not hit the promoted LPA entry, got {louvain_path:?}"
    );
    assert!(!Arc::ptr_eq(&louvain_result, &lpa_result), "cross-algorithm payload leak");

    // LPA on the patched graph: the promoted entry answers, same Arc.
    let cold_lpa = server.submit(patched(), lpa).unwrap();
    match server.await_result(cold_lpa) {
        JobOutcome::Completed { result, path: ExecPath::CacheHit } => {
            assert!(Arc::ptr_eq(&result, &lpa_result));
        }
        other => panic!("same-algorithm promotion should hit, got {other:?}"),
    }
    server.run_until_idle();
}

#[test]
fn non_louvain_delta_jobs_run_cold() {
    // Warm starting is the seeded Louvain descent; a delta job under any
    // other algorithm runs cold — completing correctly, never consuming a
    // seed partition computed by a different (or even the same) algorithm.
    let server = manual();
    let n = 48;
    for a in [Algorithm::Leiden, Algorithm::LpaSync, Algorithm::LpaAsync] {
        let opts = JobOptions::default().with_algorithm(a);
        let base = server.submit(ring(n), opts).unwrap();
        server.run_until_idle();
        server.await_result(base);
        let d = server.submit_delta(DeltaBase::Job(base), &batch(n), opts).unwrap();
        server.run_until_idle();
        let (_, path) = completed(&server, d);
        assert!(matches!(path, ExecPath::SingleDevice { .. }), "{a}: got {path:?}");
    }
    assert_eq!(server.metrics().warm_started_jobs, 0, "no non-Louvain job was seeded");

    // And a Louvain delta on the same server still warm-starts, seeded
    // strictly by its own (algorithm-qualified) base entry.
    let opts = JobOptions::default();
    let base = server.submit(ring(n), opts).unwrap();
    server.run_until_idle();
    server.await_result(base);
    let d = server.submit_delta(DeltaBase::Job(base), &batch(n), opts).unwrap();
    server.run_until_idle();
    completed(&server, d);
    assert_eq!(server.metrics().warm_started_jobs, 1);
}

#[test]
fn pooled_placement_rejects_non_louvain_with_a_typed_error() {
    // A graph too large for any single slot takes the multi-device path,
    // which only implements the Louvain descent: any other algorithm fails
    // with the typed UnsupportedAlgorithm error instead of silently
    // computing the wrong thing under its cache key.
    let graph = Arc::new(cd_workloads::load("road-usa", Scale::Tiny).unwrap().graph);
    let footprint = cd_core::estimated_device_bytes(&graph);
    let mut device = DeviceConfig::tesla_k40m();
    device.global_mem_bytes = footprint * 3 / 4;
    let server = Server::new(ServerConfig {
        workers: 0,
        num_devices: 2,
        device,
        ..ServerConfig::test_manual()
    });
    let id = server
        .submit(Arc::clone(&graph), JobOptions::default().with_algorithm(Algorithm::LpaSync))
        .unwrap();
    server.run_until_idle();
    match server.await_result(id) {
        JobOutcome::Failed(err) => match &*err {
            cd_core::GpuLouvainError::UnsupportedAlgorithm { algorithm, path } => {
                assert_eq!(*algorithm, Algorithm::LpaSync);
                assert_eq!(*path, "multi-device pool");
            }
            other => panic!("expected UnsupportedAlgorithm, got {other:?}"),
        },
        other => panic!("expected a typed failure, got {other:?}"),
    }
    // Louvain itself still runs the pooled path on the same server.
    let id = server.submit(graph, JobOptions::default()).unwrap();
    server.run_until_idle();
    match server.await_result(id) {
        JobOutcome::Completed { path: ExecPath::DevicePool { .. }, .. } => {}
        other => panic!("expected the pooled path, got {other:?}"),
    }
}
