//! End-to-end tests of incremental serving: `submit_delta`, chained cache
//! keys, warm-start execution, base promotion, and snapshot persistence of
//! delta keys. All in manual mode for deterministic interleavings.

use cd_graph::{gen::cliques, Csr, DeltaBatch, DeltaBuilder, GraphBuilder, VertexId};
use cd_serve::{DeltaBase, ExecPath, JobOptions, JobOutcome, Rejected, Server, ServerConfig};
use std::sync::Arc;

fn ring(n: usize) -> Arc<Csr> {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as VertexId, ((v + 1) % n) as VertexId, 1.0);
    }
    Arc::new(b.build())
}

fn manual() -> Server {
    Server::new(ServerConfig::test_manual())
}

/// A small batch against a ring: rewire one chord in, one ring edge out.
fn batch_a(n: usize) -> DeltaBatch {
    let mut b = DeltaBuilder::new(n);
    b.insert(0, (n / 2) as VertexId, 1.5).unwrap();
    b.delete(1, 2).unwrap();
    b.build()
}

fn batch_b(n: usize) -> DeltaBatch {
    let mut b = DeltaBuilder::new(n);
    b.insert(3, (n / 2 + 3) as VertexId, 2.0).unwrap();
    b.reweight(4, 5, 0.25).unwrap();
    b.build()
}

fn completed(server: &Server, id: cd_serve::JobId) -> (Arc<cd_serve::ServeResult>, ExecPath) {
    match server.await_result(id) {
        JobOutcome::Completed { result, path } => (result, path),
        other => panic!("expected completion, got {other:?}"),
    }
}

#[test]
fn resubmitted_delta_chain_warm_hits_with_zero_recompute() {
    let server = manual();
    let n = 64;
    let opts = JobOptions::default();

    // Build the chain: base → +batch_a → +batch_b, computing each link.
    let base = server.submit(ring(n), opts).unwrap();
    server.run_until_idle();
    let d1 = server.submit_delta(DeltaBase::Job(base), &batch_a(n), opts).unwrap();
    server.run_until_idle();
    let d2 = server.submit_delta(DeltaBase::Job(d1), &batch_b(n), opts).unwrap();
    server.run_until_idle();
    let (r1, p1) = completed(&server, d1);
    let (r2, p2) = completed(&server, d2);
    assert!(!p1.is_shared() && !p2.is_shared(), "first traversal computes: {p1:?}, {p2:?}");
    let computed = server.metrics().exec.count;

    // Replay the whole chain: every link must resolve from the cache —
    // zero producing runs, the very same Arcs handed back.
    let base2 = server.submit(ring(n), opts).unwrap();
    let e1 = server.submit_delta(DeltaBase::Job(base2), &batch_a(n), opts).unwrap();
    let e2 = server.submit_delta(DeltaBase::Job(e1), &batch_b(n), opts).unwrap();
    server.run_until_idle();
    for (id, orig) in [(e1, &r1), (e2, &r2)] {
        match server.await_result(id) {
            JobOutcome::Completed { result, path: ExecPath::CacheHit } => {
                assert!(Arc::ptr_eq(&result, orig), "replay hands back the same Arc");
            }
            other => panic!("replayed chain link was not a cache hit: {other:?}"),
        }
    }
    let m = server.metrics();
    assert_eq!(m.exec.count, computed, "replay ran zero producing runs");
    assert_eq!(m.delta_jobs, 4);
    server.run_until_idle();
}

#[test]
fn delta_jobs_warm_start_from_the_base_result() {
    let server = manual();
    let n = 48;
    let opts = JobOptions::default();
    let base = server.submit(ring(n), opts).unwrap();
    server.run_until_idle();
    server.await_result(base);

    let d = server.submit_delta(DeltaBase::Job(base), &batch_a(n), opts).unwrap();
    server.run_until_idle();
    let (_, path) = completed(&server, d);
    assert!(matches!(path, ExecPath::SingleDevice { .. }));
    assert_eq!(server.metrics().warm_started_jobs, 1, "the delta run was seeded");

    // Unknown-base deltas never reach the warm path — they bounce.
    assert!(matches!(
        server.submit_delta(DeltaBase::Graph(0xdead_beef), &batch_a(n), opts),
        Err(Rejected::UnknownBase { base: 0xdead_beef })
    ));
    let err = server
        .submit_delta(
            DeltaBase::Job(base),
            &{
                let mut b = DeltaBuilder::new(n);
                b.delete(0, 2).unwrap(); // not an edge of the ring
                b.build()
            },
            opts,
        )
        .unwrap_err();
    assert!(matches!(err, Rejected::InvalidDelta { .. }), "got {err:?}");
}

#[test]
fn delta_result_promotes_to_a_plain_base() {
    let server = manual();
    let n = 56;
    let opts = JobOptions::default();
    let base = server.submit(ring(n), opts).unwrap();
    server.run_until_idle();
    let d = server.submit_delta(DeltaBase::Job(base), &batch_a(n), opts).unwrap();
    server.run_until_idle();
    let (delta_result, _) = completed(&server, d);

    // Build the patched graph independently and submit it cold: the
    // structural hash matches (the patch path is bit-identical to a
    // rebuild), so the promoted entry answers it from the cache.
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        if (v, (v + 1) % n) == (1, 2) {
            continue;
        }
        b.add_edge(v as VertexId, ((v + 1) % n) as VertexId, 1.0);
    }
    b.add_edge(0, (n / 2) as VertexId, 1.5);
    let patched = Arc::new(b.build());
    let cold = server.submit(patched, opts).unwrap();
    match server.await_result(cold) {
        JobOutcome::Completed { result, path: ExecPath::CacheHit } => {
            assert!(Arc::ptr_eq(&result, &delta_result));
        }
        other => panic!("cold submission of the patched graph missed: {other:?}"),
    }
    server.run_until_idle();
}

#[test]
fn identical_inflight_deltas_coalesce() {
    let server = manual();
    let n = 40;
    let opts = JobOptions::default();
    let base = server.submit(ring(n), opts).unwrap();
    server.run_until_idle();

    // Two identical deltas before any processing: the second coalesces
    // onto the first (same chained key) instead of queuing.
    let d1 = server.submit_delta(DeltaBase::Job(base), &batch_a(n), opts).unwrap();
    let d2 = server.submit_delta(DeltaBase::Job(base), &batch_a(n), opts).unwrap();
    server.run_until_idle();
    let (r1, p1) = completed(&server, d1);
    let (r2, p2) = completed(&server, d2);
    assert!(!p1.is_shared());
    assert_eq!(p2, ExecPath::Coalesced);
    assert!(Arc::ptr_eq(&r1, &r2));
    server.run_until_idle();
}

#[test]
fn snapshot_persists_delta_chain_keys() {
    let dir = std::env::temp_dir().join(format!("cd-serve-delta-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("cache.snap");
    let n = 44;
    let opts = JobOptions::default();

    let (r_base, r_delta) = {
        let server = manual();
        let base = server.submit(ring(n), opts).unwrap();
        server.run_until_idle();
        let d = server.submit_delta(DeltaBase::Job(base), &batch_a(n), opts).unwrap();
        server.run_until_idle();
        let (rb, _) = completed(&server, base);
        let (rd, _) = completed(&server, d);
        assert!(server.snapshot_cache_to(&snap).unwrap() >= 2);
        (rb, rd)
    };

    // A fresh server restores the snapshot: resubmitting the chain is pure
    // cache hits, including the chained delta key — but the *base graph*
    // registry is not persisted, so the base must be submitted first (a
    // cache hit itself) to re-register it.
    let server = Server::new(ServerConfig {
        cache_snapshot: Some(snap.clone()),
        ..ServerConfig::test_manual()
    });
    assert!(server.metrics().cache_restored_entries >= 2);
    let base = server.submit(ring(n), opts).unwrap();
    let (rb2, pb) = completed(&server, base);
    assert_eq!(pb, ExecPath::CacheHit);
    assert_eq!(rb2.modularity.to_bits(), r_base.modularity.to_bits());

    let d = server.submit_delta(DeltaBase::Job(base), &batch_a(n), opts).unwrap();
    let (rd2, pd) = completed(&server, d);
    assert_eq!(pd, ExecPath::CacheHit, "restored chained key answers the delta");
    assert_eq!(rd2.partition.as_slice(), r_delta.partition.as_slice());
    assert_eq!(rd2.modularity.to_bits(), r_delta.modularity.to_bits());
    server.run_until_idle();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cliques_delta_improves_quality_not_just_speed() {
    // Sanity that warm-started results are *good*: merge two cliques of a
    // clique chain with a heavy bridge and check the warm result tracks a
    // from-scratch run within the equivalence band.
    let server = manual();
    let graph = Arc::new(cliques(4, 8, true));
    let n = graph.num_vertices();
    let opts = JobOptions::default();
    let base = server.submit(Arc::clone(&graph), opts).unwrap();
    server.run_until_idle();
    server.await_result(base);

    let mut b = DeltaBuilder::new(n);
    for i in 0..4u32 {
        b.insert(i, 8 + i, 4.0).unwrap(); // weld clique 0 to clique 1
    }
    let batch = b.build();
    let d = server.submit_delta(DeltaBase::Job(base), &batch, opts).unwrap();
    server.run_until_idle();
    let (warm, _) = completed(&server, d);

    // From-scratch reference on an independently patched graph.
    let (patched, _) = cd_graph::apply_delta(&graph, &batch).unwrap();
    let scratch_server = manual();
    let s = scratch_server.submit(Arc::new(patched), opts).unwrap();
    scratch_server.run_until_idle();
    let (scratch, _) = completed(&scratch_server, s);
    assert!(
        (warm.modularity - scratch.modularity).abs() <= 1e-3,
        "warm {} vs scratch {}",
        warm.modularity,
        scratch.modularity
    );
}
