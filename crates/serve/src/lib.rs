//! # cd-serve — a batched community-detection service
//!
//! The serving layer over the GPU Louvain reproduction: an asynchronous job
//! API with admission control, a device-pool scheduler, and a
//! content-addressed result cache. The paper computes one clustering of one
//! graph; this crate asks what it takes to *operate* that computation —
//! many concurrent requests, bounded memory, explicit backpressure, and
//! reproducible results under load.
//!
//! ## Architecture
//!
//! ```text
//!   submit ──► admission ──► bounded priority queue ──► placement ──► run
//!               │  │              (SubmissionQueue)     (DevicePool)   │
//!               │  └─ coalesce onto identical in-flight job            │
//!               └─ content-addressed cache hit (ResultCache) ◄── insert┘
//! ```
//!
//! * **Admission control** — the queue is bounded; a submit past the bound
//!   returns [`Rejected::QueueFull`] synchronously. Backpressure is an API
//!   answer, not a timeout.
//! * **Scheduling** — jobs are placed on one of N simulated device slots by
//!   their [`cd_core::estimated_device_bytes`] footprint (best fit,
//!   deterministic ties). Jobs too large for any single device run the
//!   exclusive multi-device path with its failover/degradation ladder.
//! * **Content addressing** — results are keyed by a structural hash of the
//!   CSR plus the result-affecting options. A repeat submission is answered
//!   from the cache; an identical *in-flight* submission coalesces onto the
//!   running job. Both paths hand out the same `Arc`, so reuse is
//!   bit-identical by construction.
//! * **Cooperative lifecycle** — cancellation and deadlines are observed at
//!   the dequeue checkpoint and at every stage checkpoint of the gated
//!   driver; a run is never interrupted mid-stage.
//! * **Incremental jobs** — [`Server::submit_delta`] submits a
//!   [`cd_graph::DeltaBatch`] against a previously seen base. The content
//!   key chains the base hash with the batch hash, so resubmitted delta
//!   chains warm-hit the cache link by link; a resident base result seeds
//!   the warm-start driver so the run re-evaluates only the touched
//!   frontier.
//!
//! ## Quick start
//!
//! ```
//! use cd_serve::{JobOptions, Server, ServerConfig};
//! use cd_graph::gen::cliques;
//! use std::sync::Arc;
//!
//! let mut server = Server::new(ServerConfig::test_manual()); // workers = 0
//! let graph = Arc::new(cliques(4, 8, true));
//! let id = server.submit(Arc::clone(&graph), JobOptions::default()).unwrap();
//! server.run_until_idle(); // manual mode: the caller drives execution
//! let outcome = server.await_result(id);
//! let result = outcome.result().expect("completed");
//! assert!(result.modularity > 0.6);
//!
//! // Same content again: served from the cache, same Arc, zero compute.
//! let again = server.submit(graph, JobOptions::default()).unwrap();
//! let cached = server.await_result(again);
//! assert!(Arc::ptr_eq(result, cached.result().unwrap()));
//! ```
//!
//! With `workers > 0` (the default), submission returns immediately and the
//! worker pool runs jobs concurrently; [`Server::await_result`] blocks
//! until the job settles. The closed-loop load generator ([`loadgen`])
//! replays a seeded trace of the workload suite against a server — the
//! `repro serve` experiment uses it to produce `BENCH_serve.json` and to
//! verify end-to-end determinism by replaying the trace twice. The
//! open-loop generator ([`loadgen::run_open_loop`]) submits on a Poisson
//! arrival schedule instead, driving the server *past* saturation — the
//! `repro overload` experiment uses it to locate the knee and verify that
//! overload sheds (deadline expiry at five checkpoints, estimator-based
//! [`Rejected::WontMeetDeadline`]) rather than corrupts. Device circuit
//! breakers ([`BreakerConfig`]) quarantine failing devices, and the result
//! cache persists across restarts ([`Server::snapshot_cache_to`] /
//! [`ServerConfig::cache_snapshot`]).

#![warn(missing_docs)]

pub mod cache;
pub mod hash;
pub mod job;
pub mod loadgen;
pub mod metrics;
pub mod persist;
pub mod queue;
pub mod scheduler;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use cd_core::Algorithm;
pub use hash::{chained_graph_hash, delta_hash, options_hash, structural_hash, CacheKey, Fnv1a};
pub use job::{
    DeltaBase, DeviceFault, ExecPath, JobId, JobOptions, JobOutcome, JobStatus, Priority, Rejected,
    ServeResult,
};
pub use loadgen::{
    distinct_rings, labels_fnv, run_open_loop, run_trace, suggested_device_bytes, JobRecord,
    OpenLoopConfig, OpenLoopReport, TraceConfig, TraceReport,
};
pub use metrics::{LatencyStats, ServeMetrics};
pub use persist::{RestoreError, SnapshotEntry};
pub use queue::SubmissionQueue;
pub use scheduler::{BreakerConfig, DevicePool, DeviceSlotStats, Placement};
pub use server::{Server, ServerConfig};
