//! Service observability: counters, latency distributions, and the
//! [`ServeMetrics`] snapshot the load generator serialises into
//! `BENCH_serve.json`.

use crate::cache::CacheStats;
use crate::scheduler::DeviceSlotStats;
use std::time::Duration;

/// Summary statistics of a latency sample set, in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Largest sample.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Computes the summary of `samples` (milliseconds). Percentiles use the
    /// nearest-rank method on the sorted samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        Self {
            count: sorted.len(),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ms: rank(0.50),
            p90_ms: rank(0.90),
            p99_ms: rank(0.99),
            max_ms: *sorted.last().expect("non-empty"),
        }
    }
}

/// Smoothing factor of the execution-time estimator's EWMA.
const EXEC_EWMA_ALPHA: f64 = 0.3;

/// Mutable counter state the server updates as jobs move through their
/// lifecycle; snapshotted into [`ServeMetrics`].
#[derive(Clone, Debug, Default)]
pub(crate) struct MetricsState {
    pub submitted: u64,
    pub rejected: u64,
    pub rejected_queue_full: u64,
    pub rejected_slo: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub expired: u64,
    /// Expiry breakdown by the checkpoint that observed it. The five sum to
    /// `expired`.
    pub expired_admission: u64,
    pub expired_sweep: u64,
    pub expired_dequeue: u64,
    pub expired_stage: u64,
    pub expired_settle: u64,
    /// Of `expired_dequeue`: sheds where the deadline had *not* yet passed
    /// but the estimated execution time already exceeded the remaining
    /// budget — the job was dropped early instead of burning device time.
    pub shed_predicted: u64,
    pub retried_jobs: u64,
    pub failed_over_jobs: u64,
    pub pooled_jobs: u64,
    pub sharded_jobs: u64,
    pub exchange_rounds: u64,
    pub ghost_bytes: u64,
    pub degraded_jobs: u64,
    pub delta_jobs: u64,
    pub warm_started_jobs: u64,
    pub cache_restored_entries: u64,
    pub cache_restore_failures: u64,
    pub in_flight: usize,
    pub max_in_flight: usize,
    /// EWMA of execution milliseconds per footprint byte over completed
    /// single-device runs — the basis of the SLO shedding estimate.
    pub exec_ewma_ms_per_byte: Option<f64>,
    /// Milliseconds each job spent queued (admission → placement).
    pub queue_wait_ms: Vec<f64>,
    /// Milliseconds each producing run spent executing.
    pub exec_ms: Vec<f64>,
    /// Milliseconds submission → terminal state, every job.
    pub total_ms: Vec<f64>,
}

impl MetricsState {
    pub(crate) fn record_queue_wait(&mut self, d: Duration) {
        self.queue_wait_ms.push(d.as_secs_f64() * 1e3);
    }

    /// Records an executed run. `footprint` feeds the execution-time
    /// estimator and is supplied for single-device runs only — pooled runs
    /// have a different cost shape and would skew the per-byte rate.
    pub(crate) fn record_exec(&mut self, d: Duration, footprint: Option<usize>) {
        let ms = d.as_secs_f64() * 1e3;
        self.exec_ms.push(ms);
        if let Some(bytes) = footprint.filter(|&b| b > 0) {
            let per_byte = ms / bytes as f64;
            self.exec_ewma_ms_per_byte = Some(match self.exec_ewma_ms_per_byte {
                None => per_byte,
                Some(old) => old + EXEC_EWMA_ALPHA * (per_byte - old),
            });
        }
    }

    /// Estimated execution time of a job with the given footprint, from the
    /// observed per-byte rate. `None` until at least one single-device run
    /// has completed — the estimator never sheds on zero evidence.
    pub(crate) fn estimate_exec(&self, footprint: usize) -> Option<Duration> {
        let per_byte = self.exec_ewma_ms_per_byte?;
        Some(Duration::from_secs_f64((per_byte * footprint as f64 / 1e3).max(0.0)))
    }

    pub(crate) fn record_total(&mut self, d: Duration) {
        self.total_ms.push(d.as_secs_f64() * 1e3);
    }
}

/// A point-in-time snapshot of everything the service counts, returned by
/// [`crate::Server::metrics`].
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Jobs admitted (assigned an id), including coalesced and cache-hit
    /// submissions.
    pub submitted: u64,
    /// Submissions refused at the door ([`crate::Rejected`]).
    pub rejected: u64,
    /// Of `rejected`: refused because the bounded queue was full.
    pub rejected_queue_full: u64,
    /// Of `rejected`: refused because the estimated execution time already
    /// exceeded the submitted deadline budget
    /// ([`crate::Rejected::WontMeetDeadline`]).
    pub rejected_slo: u64,
    /// Jobs that reached [`crate::JobStatus::Completed`].
    pub completed: u64,
    /// Jobs that reached [`crate::JobStatus::Failed`].
    pub failed: u64,
    /// Jobs that reached [`crate::JobStatus::Cancelled`].
    pub cancelled: u64,
    /// Jobs that reached [`crate::JobStatus::Expired`].
    pub expired: u64,
    /// Of `expired`: caught at admission (deadline already past at submit).
    pub expired_admission: u64,
    /// Of `expired`: caught by the periodic queue sweep.
    pub expired_sweep: u64,
    /// Of `expired`: caught at the queue-dequeue checkpoint (including
    /// predictive sheds — see `shed_predicted`).
    pub expired_dequeue: u64,
    /// Of `expired`: caught at a stage checkpoint mid-run.
    pub expired_stage: u64,
    /// Of `expired`: followers settled expired when their leader finished,
    /// and jobs whose deadline passed across a failed placement.
    pub expired_settle: u64,
    /// Of `expired_dequeue`: shed *before* the deadline passed because the
    /// estimated execution time exceeded the remaining budget.
    pub shed_predicted: u64,
    /// Placements retried on another device after a device-attributable
    /// failure (circuit-breaker failover).
    pub retried_jobs: u64,
    /// Jobs that completed via [`crate::ExecPath::FailedOver`].
    pub failed_over_jobs: u64,
    /// Circuit-breaker trips across the device pool.
    pub breaker_trips: u64,
    /// Half-open reinstatements across the device pool.
    pub breaker_reinstatements: u64,
    /// Device slots currently quarantined.
    pub quarantined_devices: usize,
    /// Jobs that ran the exclusive multi-device path.
    pub pooled_jobs: u64,
    /// Jobs that ran the sharded out-of-core engine (`cd_dist`): the graph
    /// was split across the pool with ghost vertices and halo label
    /// exchange because no single device could hold it.
    pub sharded_jobs: u64,
    /// Halo exchange rounds (supersteps) across all sharded jobs.
    pub exchange_rounds: u64,
    /// Bytes the halo exchanges moved across all sharded jobs.
    pub ghost_bytes: u64,
    /// Pooled jobs whose recovery log shows sequential degradation.
    pub degraded_jobs: u64,
    /// Delta submissions received through [`crate::Server::submit_delta`]
    /// past base resolution (whether they then queued, coalesced, or hit
    /// the cache).
    pub delta_jobs: u64,
    /// Producing runs that executed via the warm-start driver — seeded from
    /// the base's partition with a touched-vertex frontier — rather than
    /// from scratch.
    pub warm_started_jobs: u64,
    /// Cache entries restored from a snapshot at startup.
    pub cache_restored_entries: u64,
    /// Snapshot restores that failed (corrupt/unreadable snapshot → cold
    /// start). At most 1 per server lifetime today, counted for the gate.
    pub cache_restore_failures: u64,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Jobs currently executing on the pool.
    pub in_flight: usize,
    /// High-water mark of concurrent executions.
    pub max_in_flight: usize,
    /// Queue-wait latency (admission → placement) of placed jobs.
    pub queue_wait: LatencyStats,
    /// Execution latency of producing runs.
    pub exec: LatencyStats,
    /// End-to-end latency (submission → terminal state) of all jobs.
    pub total: LatencyStats,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Live cache bytes.
    pub cache_bytes: usize,
    /// Per-device-slot accounting.
    pub devices: Vec<DeviceSlotStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p90_ms, 90.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-12);
    }

    #[test]
    fn latency_handles_empty_and_single() {
        assert_eq!(LatencyStats::from_samples(&[]).count, 0);
        let one = LatencyStats::from_samples(&[7.0]);
        assert_eq!((one.p50_ms, one.p99_ms, one.max_ms), (7.0, 7.0, 7.0));
    }
}
