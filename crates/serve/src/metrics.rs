//! Service observability: counters, latency distributions, and the
//! [`ServeMetrics`] snapshot the load generator serialises into
//! `BENCH_serve.json`.

use crate::cache::CacheStats;
use crate::scheduler::DeviceSlotStats;
use std::time::Duration;

/// Summary statistics of a latency sample set, in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Largest sample.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Computes the summary of `samples` (milliseconds). Percentiles use the
    /// nearest-rank method on the sorted samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        Self {
            count: sorted.len(),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ms: rank(0.50),
            p90_ms: rank(0.90),
            p99_ms: rank(0.99),
            max_ms: *sorted.last().expect("non-empty"),
        }
    }
}

/// Mutable counter state the server updates as jobs move through their
/// lifecycle; snapshotted into [`ServeMetrics`].
#[derive(Clone, Debug, Default)]
pub(crate) struct MetricsState {
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub expired: u64,
    pub pooled_jobs: u64,
    pub degraded_jobs: u64,
    pub in_flight: usize,
    pub max_in_flight: usize,
    /// Milliseconds each job spent queued (admission → placement).
    pub queue_wait_ms: Vec<f64>,
    /// Milliseconds each producing run spent executing.
    pub exec_ms: Vec<f64>,
    /// Milliseconds submission → terminal state, every job.
    pub total_ms: Vec<f64>,
}

impl MetricsState {
    pub(crate) fn record_queue_wait(&mut self, d: Duration) {
        self.queue_wait_ms.push(d.as_secs_f64() * 1e3);
    }

    pub(crate) fn record_exec(&mut self, d: Duration) {
        self.exec_ms.push(d.as_secs_f64() * 1e3);
    }

    pub(crate) fn record_total(&mut self, d: Duration) {
        self.total_ms.push(d.as_secs_f64() * 1e3);
    }
}

/// A point-in-time snapshot of everything the service counts, returned by
/// [`crate::Server::metrics`].
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Jobs admitted (assigned an id), including coalesced and cache-hit
    /// submissions.
    pub submitted: u64,
    /// Submissions refused at the door ([`crate::Rejected`]).
    pub rejected: u64,
    /// Jobs that reached [`crate::JobStatus::Completed`].
    pub completed: u64,
    /// Jobs that reached [`crate::JobStatus::Failed`].
    pub failed: u64,
    /// Jobs that reached [`crate::JobStatus::Cancelled`].
    pub cancelled: u64,
    /// Jobs that reached [`crate::JobStatus::Expired`].
    pub expired: u64,
    /// Jobs that ran the exclusive multi-device path.
    pub pooled_jobs: u64,
    /// Pooled jobs whose recovery log shows sequential degradation.
    pub degraded_jobs: u64,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Jobs currently executing on the pool.
    pub in_flight: usize,
    /// High-water mark of concurrent executions.
    pub max_in_flight: usize,
    /// Queue-wait latency (admission → placement) of placed jobs.
    pub queue_wait: LatencyStats,
    /// Execution latency of producing runs.
    pub exec: LatencyStats,
    /// End-to-end latency (submission → terminal state) of all jobs.
    pub total: LatencyStats,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Live cache bytes.
    pub cache_bytes: usize,
    /// Per-device-slot accounting.
    pub devices: Vec<DeviceSlotStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p90_ms, 90.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-12);
    }

    #[test]
    fn latency_handles_empty_and_single() {
        assert_eq!(LatencyStats::from_samples(&[]).count, 0);
        let one = LatencyStats::from_samples(&[7.0]);
        assert_eq!((one.p50_ms, one.p99_ms, one.max_ms), (7.0, 7.0, 7.0));
    }
}
