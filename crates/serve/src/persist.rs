//! The versioned, checksummed snapshot format of the result cache.
//!
//! A snapshot is a self-contained byte image of every cached result, written
//! so a restarted server can warm-start instead of recomputing its working
//! set. The format is deliberately dumb — fixed little-endian integers, no
//! compression, one trailing checksum — because the failure mode that
//! matters is *corruption tolerance*: a truncated or bit-flipped snapshot
//! must be detected, reported as a typed [`RestoreError`], and discarded for
//! a clean cold start. Restore never panics on hostile bytes.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "CDSC"
//! 4       4     format version (currently 1)
//! 8       8     entry count N
//! 16      …     N entries, each:
//!                 graph key      u64   (CacheKey::graph)
//!                 options key    u64   (CacheKey::options)
//!                 modularity     u64   (f64 bit pattern — exact)
//!                 stages         u64
//!                 label count L  u64
//!                 labels         L × u32
//! end-8   8     FNV-1a checksum over every byte before it
//! ```
//!
//! Entries are written in least-recently-used-first order, so replaying
//! them through ordinary inserts reproduces the recency order the snapshot
//! captured.

use crate::hash::{CacheKey, Fnv1a};

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CDSC";
/// Current format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One cached result in portable form.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotEntry {
    /// The content address the result is stored under.
    pub key: CacheKey,
    /// Modularity of the cached partition.
    pub modularity: f64,
    /// Driver stages of the producing run.
    pub stages: usize,
    /// Community labels of the cached partition.
    pub labels: Vec<u32>,
}

/// Why a snapshot could not be restored. Every variant means the same
/// thing operationally: log it, drop the snapshot, cold-start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// Shorter than the fixed header + checksum — nothing to even verify.
    TooShort {
        /// Bytes present.
        len: usize,
    },
    /// The magic bytes are not `CDSC` — not a snapshot at all.
    BadMagic,
    /// A version this build does not read.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the content — truncation past
    /// the header, bit flips, or any other corruption.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum of the bytes actually present.
        computed: u64,
    },
    /// The checksum held but the structure ran off the end of the buffer —
    /// an internally inconsistent snapshot (e.g. a forged length field).
    Truncated {
        /// Entry index being decoded when the buffer ran out.
        entry: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::TooShort { len } => {
                write!(f, "snapshot too short ({len} bytes) to hold a header and checksum")
            }
            RestoreError::BadMagic => write!(f, "snapshot magic bytes missing"),
            RestoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "snapshot format version {v} is not supported (current {SNAPSHOT_VERSION})"
                )
            }
            RestoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ),
            RestoreError::Truncated { entry } => {
                write!(f, "snapshot structure truncated while decoding entry {entry}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Serialises entries into the snapshot byte format described in the
/// module docs.
pub fn encode_snapshot(entries: &[SnapshotEntry]) -> Vec<u8> {
    let payload: usize = entries.iter().map(|e| 40 + e.labels.len() * 4).sum();
    let mut buf = Vec::with_capacity(16 + payload + 8);
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        buf.extend_from_slice(&e.key.graph.to_le_bytes());
        buf.extend_from_slice(&e.key.options.to_le_bytes());
        buf.extend_from_slice(&e.modularity.to_bits().to_le_bytes());
        buf.extend_from_slice(&(e.stages as u64).to_le_bytes());
        buf.extend_from_slice(&(e.labels.len() as u64).to_le_bytes());
        for &l in &e.labels {
            buf.extend_from_slice(&l.to_le_bytes());
        }
    }
    let mut h = Fnv1a::new();
    h.write_bytes(&buf);
    buf.extend_from_slice(&h.finish().to_le_bytes());
    buf
}

/// Reads a little-endian `u64` at `*pos`, or fails as a truncated entry.
fn read_u64(bytes: &[u8], pos: &mut usize, entry: usize) -> Result<u64, RestoreError> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
    let Some(end) = end else { return Err(RestoreError::Truncated { entry }) };
    let v = u64::from_le_bytes(bytes[*pos..end].try_into().expect("8-byte slice"));
    *pos = end;
    Ok(v)
}

/// Parses and verifies a snapshot. Any defect — wrong magic, unknown
/// version, failed checksum, inconsistent structure — is a typed error;
/// no input can panic this function.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<SnapshotEntry>, RestoreError> {
    if bytes.len() < 24 {
        return Err(RestoreError::TooShort { len: bytes.len() });
    }
    if bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(RestoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != SNAPSHOT_VERSION {
        return Err(RestoreError::UnsupportedVersion(version));
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte slice"));
    let computed = {
        let mut h = Fnv1a::new();
        h.write_bytes(body);
        h.finish()
    };
    if stored != computed {
        return Err(RestoreError::ChecksumMismatch { stored, computed });
    }
    let mut pos = 16usize;
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    // The checksum already authenticated the bytes, but the structure can
    // still be internally inconsistent; bound the decode by the body length.
    let mut entries = Vec::new();
    for i in 0..count {
        let i = i as usize;
        let graph = read_u64(body, &mut pos, i)?;
        let options = read_u64(body, &mut pos, i)?;
        let modularity = f64::from_bits(read_u64(body, &mut pos, i)?);
        let stages = read_u64(body, &mut pos, i)? as usize;
        let num_labels = read_u64(body, &mut pos, i)? as usize;
        let label_bytes = num_labels
            .checked_mul(4)
            .filter(|b| pos.checked_add(*b).is_some_and(|e| e <= body.len()));
        let Some(label_bytes) = label_bytes else {
            return Err(RestoreError::Truncated { entry: i });
        };
        let labels = body[pos..pos + label_bytes]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        pos += label_bytes;
        entries.push(SnapshotEntry {
            key: CacheKey { graph, options },
            modularity,
            stages,
            labels,
        });
    }
    if pos != body.len() {
        // Trailing garbage inside a checksummed body: count field lied.
        return Err(RestoreError::Truncated { entry: count as usize });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SnapshotEntry> {
        vec![
            SnapshotEntry {
                key: CacheKey { graph: 0xdead_beef, options: 42 },
                modularity: 0.4375,
                stages: 3,
                labels: vec![0, 1, 1, 2, 0],
            },
            SnapshotEntry {
                key: CacheKey { graph: 7, options: 9 },
                modularity: -0.5,
                stages: 1,
                labels: vec![],
            },
        ]
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let entries = sample();
        let bytes = encode_snapshot(&entries);
        let decoded = decode_snapshot(&bytes).expect("clean snapshot decodes");
        assert_eq!(decoded, entries);
        // Re-encoding the decode reproduces the exact bytes.
        assert_eq!(encode_snapshot(&decoded), bytes);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = encode_snapshot(&[]);
        assert_eq!(decode_snapshot(&bytes).expect("empty is valid"), vec![]);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_snapshot(&sample());
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len]).is_err(),
                "a {len}-byte prefix of a {}-byte snapshot must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode_snapshot(&sample());
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 1;
            assert!(decode_snapshot(&flipped).is_err(), "bit flip at byte {i} must be caught");
        }
    }

    #[test]
    fn typed_header_errors() {
        assert_eq!(decode_snapshot(&[]), Err(RestoreError::TooShort { len: 0 }));
        let mut bad_magic = encode_snapshot(&[]);
        bad_magic[0] = b'X';
        assert_eq!(decode_snapshot(&bad_magic), Err(RestoreError::BadMagic));
        // A wrong version with a *recomputed* checksum still refuses.
        let mut wrong_version = encode_snapshot(&[]);
        wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        let body_len = wrong_version.len() - 8;
        let mut h = Fnv1a::new();
        h.write_bytes(&wrong_version[..body_len]);
        let sum = h.finish().to_le_bytes();
        wrong_version[body_len..].copy_from_slice(&sum);
        assert_eq!(decode_snapshot(&wrong_version), Err(RestoreError::UnsupportedVersion(99)));
    }

    #[test]
    fn forged_count_with_valid_checksum_is_truncated_not_panic() {
        // Claim 1000 entries but provide none, then re-checksum so only the
        // structural bound can catch it.
        let mut bytes = encode_snapshot(&[]);
        bytes[8..16].copy_from_slice(&1000u64.to_le_bytes());
        let body_len = bytes.len() - 8;
        let mut h = Fnv1a::new();
        h.write_bytes(&bytes[..body_len]);
        let sum = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        assert_eq!(decode_snapshot(&bytes), Err(RestoreError::Truncated { entry: 0 }));
    }
}
