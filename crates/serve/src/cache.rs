//! The content-addressed result cache with LRU eviction.
//!
//! Completed results are stored under their [`CacheKey`]; a later submission
//! of the same (graph, options) content is answered from the cache without
//! touching the queue or a device. Eviction is least-recently-used by a
//! logical access clock, bounded by a byte budget — the accounting mirrors
//! the gpusim buffer pool's [`cd_gpusim::PoolStats`] shape (hits, misses,
//! bytes in/out) so the two reuse layers report alike.

use crate::hash::CacheKey;
use crate::job::ServeResult;
use crate::persist::{decode_snapshot, encode_snapshot, RestoreError, SnapshotEntry};
use cd_graph::Partition;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters of cache behaviour since server start. Monotone; the
/// point-in-time occupancy lives in [`ResultCache::entries`] /
/// [`ResultCache::bytes`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Submissions answered from the cache.
    pub hits: u64,
    /// Submissions that found no entry (and went on to compute).
    pub misses: u64,
    /// Submissions attached to an identical in-flight job instead of
    /// computing — the in-flight complement of a hit.
    pub coalesced: u64,
    /// Results inserted.
    pub insertions: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes of inserted results.
    pub bytes_inserted: u64,
    /// Bytes reclaimed by eviction.
    pub bytes_evicted: u64,
    /// Inserts refused up front because the single entry exceeded the whole
    /// byte budget — admitting one would first evict everything and still
    /// not fit.
    pub rejected_oversized: u64,
}

impl CacheStats {
    /// Hit rate over cache lookups (hits + misses); coalesced submissions
    /// never reached the lookup, so they are excluded, like the pool's
    /// definition.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of all submissions served without computing (hit or
    /// coalesced).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }
}

struct Entry {
    result: Arc<ServeResult>,
    payload: usize,
    last_use: u64,
}

/// Fixed per-key accounting overhead: the modularity, stage count, key, and
/// map-entry bookkeeping.
const ENTRY_OVERHEAD: usize = 64;

/// Approximate retained size of a cached result's payload: the label array
/// dominates.
fn payload_bytes(result: &ServeResult) -> usize {
    result.partition.as_slice().len() * 4
}

/// A bounded LRU map from content address to shared result.
///
/// One payload may live under several keys: a completed delta job is
/// inserted under its *chained* key (base hash folded with the applied
/// delta hashes) and, promoted to a new base, under the structural hash of
/// the patched graph — the same `Arc<ServeResult>` both times. Byte
/// accounting refcounts payloads by allocation identity so a shared label
/// array is charged exactly once, and is freed only when its last key is
/// evicted; each key still pays the fixed [`ENTRY_OVERHEAD`].
pub struct ResultCache {
    entries: HashMap<CacheKey, Entry>,
    /// Payload allocation (`Arc` data pointer) → number of keys sharing it.
    /// Entries keep their `Arc` alive, so a live pointer here is never
    /// dangling; the slot is removed at refcount zero, so a recycled
    /// address can never inherit a stale count.
    payload_refs: HashMap<usize, usize>,
    capacity_bytes: usize,
    bytes: usize,
    clock: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache bounded by `capacity_bytes`. A zero capacity disables
    /// caching (every insert is rejected as oversized, so lookups always
    /// miss).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            entries: HashMap::new(),
            payload_refs: HashMap::new(),
            capacity_bytes,
            bytes: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Drops one key's claim on its payload, returning the bytes actually
    /// freed: the overhead always, the payload only at its last reference.
    fn release(&mut self, e: &Entry) -> usize {
        let ptr = Arc::as_ptr(&e.result) as usize;
        let refs = self.payload_refs.get_mut(&ptr).expect("cached payload is refcounted");
        *refs -= 1;
        let freed = if *refs == 0 {
            self.payload_refs.remove(&ptr);
            e.payload + ENTRY_OVERHEAD
        } else {
            ENTRY_OVERHEAD
        };
        self.bytes -= freed;
        freed
    }

    /// Looks up a key, counting a hit or miss and refreshing recency on hit.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<ServeResult>> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_use = self.clock;
                self.stats.hits += 1;
                Some(Arc::clone(&e.result))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks a key without touching recency or the hit/miss counters —
    /// used by internal resolutions (the warm-seed lookup of a delta
    /// submission) that must not skew the client-facing statistics.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<ServeResult>> {
        self.entries.get(key).map(|e| Arc::clone(&e.result))
    }

    /// Records a submission that coalesced onto an in-flight job.
    pub fn note_coalesced(&mut self) {
        self.stats.coalesced += 1;
    }

    /// Inserts a freshly computed result, evicting least-recently-used
    /// entries until the byte budget holds. Re-inserting an existing key
    /// replaces the entry (the results are bit-identical anyway).
    ///
    /// An entry larger than the whole budget is rejected up front
    /// ([`CacheStats::rejected_oversized`]) — it could never be retained,
    /// and evicting the entire working set on its way to not fitting would
    /// be pure loss.
    pub fn insert(&mut self, key: CacheKey, result: Arc<ServeResult>) {
        let payload = payload_bytes(&result);
        self.clock += 1;
        if payload + ENTRY_OVERHEAD > self.capacity_bytes {
            self.stats.rejected_oversized += 1;
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.release(&old);
        }
        self.stats.insertions += 1;
        let ptr = Arc::as_ptr(&result) as usize;
        let refs = self.payload_refs.entry(ptr).or_insert(0);
        // A payload already resident under another key (a delta-chain
        // alias) is charged only the per-key overhead.
        let charged = if *refs == 0 { payload + ENTRY_OVERHEAD } else { ENTRY_OVERHEAD };
        *refs += 1;
        self.stats.bytes_inserted += charged as u64;
        self.bytes += charged;
        self.entries.insert(key, Entry { result, payload, last_use: self.clock });
        while self.bytes > self.capacity_bytes && !self.entries.is_empty() {
            // Full scan for the LRU victim: entry counts here are the number
            // of distinct workloads, not the number of requests, so O(n)
            // eviction is far from the service hot path.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
                .expect("non-empty cache has an LRU entry");
            let evicted = self.entries.remove(&victim).expect("victim came from the map");
            let freed = self.release(&evicted);
            self.stats.evictions += 1;
            self.stats.bytes_evicted += freed as u64;
        }
    }

    /// Number of cached results.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Current retained bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Serialises every cached result into the versioned, checksummed
    /// snapshot format ([`crate::persist`]), least-recently-used first so a
    /// restore reproduces the recency order.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut order: Vec<(&CacheKey, &Entry)> = self.entries.iter().collect();
        order.sort_by_key(|(_, e)| e.last_use);
        let entries: Vec<SnapshotEntry> = order
            .into_iter()
            .map(|(key, e)| SnapshotEntry {
                key: *key,
                modularity: e.result.modularity,
                stages: e.result.stages,
                labels: e.result.partition.as_slice().to_vec(),
            })
            .collect();
        encode_snapshot(&entries)
    }

    /// Restores a snapshot produced by [`Self::snapshot`], replaying its
    /// entries through ordinary inserts (so the byte budget and the
    /// oversized-entry rule of *this* cache apply — a snapshot from a
    /// larger cache restores as much of its most-recent tail as fits).
    /// Returns the number of entries admitted (an admitted entry may still
    /// be evicted by a later, more-recent one when the budget is tight).
    ///
    /// A defective snapshot — truncated, bit-flipped, wrong version —
    /// returns a typed [`RestoreError`] and leaves the cache exactly as it
    /// was: corruption can cost the warm start, never the server.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<usize, RestoreError> {
        let decoded = decode_snapshot(bytes)?;
        let mut restored = 0;
        for e in decoded {
            let result = Arc::new(ServeResult {
                partition: Partition::from_vec(e.labels),
                modularity: e.modularity,
                stages: e.stages,
            });
            self.insert(e.key, result);
            if self.entries.contains_key(&e.key) {
                restored += 1;
            }
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cd_graph::Partition;

    fn result(n: usize) -> Arc<ServeResult> {
        Arc::new(ServeResult {
            partition: Partition::from_vec(vec![0; n]),
            modularity: 0.5,
            stages: 1,
        })
    }

    fn key(i: u64) -> CacheKey {
        CacheKey { graph: i, options: 0 }
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut c = ResultCache::new(1 << 20);
        assert!(c.lookup(&key(1)).is_none());
        c.insert(key(1), result(10));
        let got = c.lookup(&key(1)).expect("inserted entry hits");
        assert_eq!(got.partition.as_slice().len(), 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // Each 100-label entry costs 464 bytes; budget fits two.
        let mut c = ResultCache::new(1000);
        c.insert(key(1), result(100));
        c.insert(key(2), result(100));
        assert!(c.lookup(&key(1)).is_some()); // refresh 1 → victim becomes 2
        c.insert(key(3), result(100));
        assert!(c.lookup(&key(1)).is_some());
        assert!(c.lookup(&key(2)).is_none());
        assert!(c.lookup(&key(3)).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes_evicted, 464);
        assert!(c.bytes() <= c.capacity_bytes());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(1), result(10));
        assert_eq!(c.entries(), 0);
        assert!(c.lookup(&key(1)).is_none());
    }

    #[test]
    fn oversized_entry_is_rejected_without_evicting_the_cache() {
        // Budget fits two 100-label entries (464 bytes each) but not one
        // 1000-label entry (4064 bytes).
        let mut c = ResultCache::new(1000);
        c.insert(key(1), result(100));
        c.insert(key(2), result(100));
        c.insert(key(3), result(1000));
        let s = c.stats();
        assert_eq!(s.rejected_oversized, 1);
        assert_eq!(s.evictions, 0, "the resident working set must survive");
        assert_eq!(c.entries(), 2);
        assert!(c.lookup(&key(1)).is_some());
        assert!(c.lookup(&key(2)).is_some());
        assert!(c.lookup(&key(3)).is_none());
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_results_and_recency() {
        let mut c = ResultCache::new(1 << 20);
        c.insert(key(1), result(10));
        c.insert(key(2), result(20));
        assert!(c.lookup(&key(1)).is_some(), "refresh 1 so 2 is the LRU victim");
        let bytes = c.snapshot();

        let mut warm = ResultCache::new(1 << 20);
        assert_eq!(warm.restore(&bytes).expect("clean snapshot restores"), 2);
        assert_eq!(warm.entries(), 2);
        let got = warm.lookup(&key(2)).expect("restored entry hits");
        assert_eq!(got.partition.as_slice().len(), 20);
        // Bit-identity of the payload across the round trip.
        let orig = c.lookup(&key(2)).expect("still cached");
        assert_eq!(orig.modularity.to_bits(), got.modularity.to_bits());
        assert_eq!(orig.partition.as_slice(), got.partition.as_slice());
        assert_eq!(orig.stages, got.stages);
        // Recency carried over: the source refreshed key(1), so key(2) is
        // its LRU entry — and must be the first evicted after a restore.
        let mut tight = ResultCache::new(600);
        tight.restore(&bytes).expect("restores into a tighter cache");
        tight.insert(key(9), result(100)); // 464 bytes force one eviction
        assert!(tight.lookup(&key(1)).is_some(), "the recent entry survived");
        assert!(tight.lookup(&key(2)).is_none(), "the LRU entry was the victim");
    }

    #[test]
    fn corrupted_snapshot_leaves_the_cache_untouched() {
        let mut c = ResultCache::new(1 << 20);
        c.insert(key(1), result(10));
        let mut bytes = c.snapshot();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut warm = ResultCache::new(1 << 20);
        warm.insert(key(7), result(5));
        assert!(warm.restore(&bytes).is_err());
        assert_eq!(warm.entries(), 1, "failed restore changes nothing");
        assert!(warm.lookup(&key(7)).is_some());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = ResultCache::new(1 << 20);
        c.insert(key(1), result(10));
        let before = c.bytes();
        c.insert(key(1), result(10));
        assert_eq!(c.bytes(), before);
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn shared_payload_is_counted_once_across_keys() {
        // A delta job's result lands under its chained key and, promoted to
        // a new base, under the patched graph's structural key — the same
        // Arc both times. The label array must be charged once.
        let mut c = ResultCache::new(1 << 20);
        let shared = result(100); // 400-byte payload
        c.insert(key(1), Arc::clone(&shared));
        let single = c.bytes();
        c.insert(key(2), Arc::clone(&shared));
        assert_eq!(c.entries(), 2);
        assert_eq!(c.bytes(), single + 64, "alias adds only per-key overhead");

        // Replacing one alias with a distinct payload charges the new
        // payload but keeps the shared one resident for the other key.
        c.insert(key(2), result(100));
        assert_eq!(c.bytes(), 2 * single);
        assert_eq!(c.lookup(&key(1)).unwrap().partition.as_slice().len(), 100);
    }

    #[test]
    fn evicting_one_alias_keeps_the_shared_payload_resident() {
        // Budget 1000: payload 400 + overhead 64 per key. Two aliases of one
        // payload cost 528; a second 464-byte entry totals 992 and fits —
        // which it would not if the alias double-counted its payload.
        let mut c = ResultCache::new(1000);
        let shared = result(100);
        c.insert(key(1), Arc::clone(&shared));
        c.insert(key(2), Arc::clone(&shared));
        c.insert(key(3), result(100));
        assert_eq!(c.entries(), 3);
        assert_eq!(c.stats().evictions, 0, "aliases must not double-count into eviction");

        // Evicting one alias frees only its overhead, so the LRU loop keeps
        // going until the budget truly holds; the survivor still resolves.
        c.insert(key(4), result(100));
        assert!(c.bytes() <= c.capacity_bytes());
        let survivors = [1, 2, 3, 4].iter().filter(|&&i| c.lookup(&key(i)).is_some()).count();
        assert!(survivors >= 2);
        let total_payloads: usize = c.payload_refs.keys().count();
        assert!(total_payloads <= c.entries());
    }
}
