//! The bounded, priority-aware submission queue — the admission-control
//! half of the server.
//!
//! The queue admits at most `capacity` jobs; a submit beyond that is the
//! caller's explicit [`crate::Rejected::QueueFull`] backpressure signal.
//! Dequeue order is strict priority, FIFO (by job id, i.e. submission
//! order) within a class — deterministic for any fixed submission sequence.

use crate::job::{JobId, Priority};
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq)]
struct QueuedJob {
    priority: Priority,
    id: JobId,
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then the *lower* (earlier) id.
        self.priority.cmp(&other.priority).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded priority queue of admitted job ids.
pub struct SubmissionQueue {
    heap: BinaryHeap<QueuedJob>,
    capacity: usize,
    max_depth: usize,
}

impl SubmissionQueue {
    /// An empty queue admitting at most `capacity` jobs (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self { heap: BinaryHeap::new(), capacity: capacity.max(1), max_depth: 0 }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// True when another job can be admitted.
    pub fn has_room(&self) -> bool {
        self.heap.len() < self.capacity
    }

    /// Enqueues an admitted job. Returns `false` (and drops nothing — the
    /// caller still owns the job) when the queue is full.
    pub fn push(&mut self, id: JobId, priority: Priority) -> bool {
        if !self.has_room() {
            return false;
        }
        self.heap.push(QueuedJob { priority, id });
        self.max_depth = self.max_depth.max(self.heap.len());
        true
    }

    /// Re-enqueues a job the server already owns — a popped head whose
    /// placement must wait, or a coalesced follower promoted to leader.
    /// Exempt from the capacity bound: admission control applies to new
    /// submissions, not to jobs admitted earlier. Because ordering within a
    /// priority class is by id, a pushed-back job keeps its queue position.
    pub fn push_promoted(&mut self, id: JobId, priority: Priority) {
        self.heap.push(QueuedJob { priority, id });
        self.max_depth = self.max_depth.max(self.heap.len());
    }

    /// Removes and returns the next job: highest priority, earliest
    /// submission within the class.
    pub fn pop(&mut self) -> Option<JobId> {
        self.heap.pop().map(|q| q.id)
    }

    /// Drops every queued entry for which `keep` returns `false` and
    /// returns how many were removed. The queue sweep uses this to purge
    /// entries whose jobs were finalized while queued (cancelled or
    /// expired) — stale ids otherwise sit in the heap counting against the
    /// admission bound until a worker happens to pop them.
    pub fn retain_live(&mut self, mut keep: impl FnMut(JobId) -> bool) -> usize {
        let before = self.heap.len();
        self.heap.retain(|q| keep(q.id));
        before - self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dequeues_by_priority_then_submission_order() {
        let mut q = SubmissionQueue::new(8);
        assert!(q.push(JobId(0), Priority::Low));
        assert!(q.push(JobId(1), Priority::High));
        assert!(q.push(JobId(2), Priority::Normal));
        assert!(q.push(JobId(3), Priority::High));
        assert!(q.push(JobId(4), Priority::Normal));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|id| id.0).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn bounded_admission() {
        let mut q = SubmissionQueue::new(2);
        assert!(q.push(JobId(0), Priority::Normal));
        assert!(q.push(JobId(1), Priority::Normal));
        assert!(!q.push(JobId(2), Priority::High), "full queue rejects even high priority");
        assert_eq!(q.len(), 2);
        q.pop();
        assert!(q.push(JobId(2), Priority::High), "room after a dequeue");
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn retain_live_purges_and_frees_room() {
        let mut q = SubmissionQueue::new(3);
        assert!(q.push(JobId(0), Priority::Normal));
        assert!(q.push(JobId(1), Priority::High));
        assert!(q.push(JobId(2), Priority::Normal));
        assert!(!q.has_room());
        // Purge the two even ids, as a sweep would after finalizing them.
        assert_eq!(q.retain_live(|id| id.0 % 2 == 1), 2);
        assert_eq!(q.len(), 1);
        assert!(q.has_room());
        assert_eq!(q.pop(), Some(JobId(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut q = SubmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(JobId(0), Priority::Normal));
        assert!(!q.push(JobId(1), Priority::Normal));
    }
}
