//! The device-pool scheduler: placement of jobs onto N simulated devices by
//! estimated memory footprint.
//!
//! Each pool slot models one accelerator with `global_mem_bytes` of device
//! memory. A job's footprint is [`cd_core::estimated_device_bytes`] — the
//! same accounting the driver's out-of-memory check uses, so a placement the
//! scheduler accepts is one the device will not immediately reject. Jobs
//! that fit a single device are placed best-fit (most free bytes, lowest
//! index on ties — deterministic). Jobs too large for any device take the
//! pooled path: an exclusive reservation of the whole pool for a
//! coarse-grained multi-device run ([`cd_core::louvain_multi_gpu`]), which
//! brings its own failover/degradation ladder.

use cd_gpusim::DeviceConfig;

/// Where the scheduler decided a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// One device slot, identified by pool index.
    Single(usize),
    /// The whole pool, exclusively (multi-device path).
    Pooled,
}

/// Per-slot accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceSlotStats {
    /// Jobs completed on this slot (single-device placements only).
    pub jobs_completed: u64,
    /// Bytes currently reserved by in-flight placements.
    pub bytes_in_use: usize,
    /// In-flight single-device jobs on the slot.
    pub in_flight: usize,
}

struct Slot {
    capacity_bytes: usize,
    bytes_in_use: usize,
    in_flight: usize,
    jobs_completed: u64,
}

/// A pool of N simulated device slots with footprint-based placement.
///
/// The pool tracks *reservations*, not `Device` objects: the server builds a
/// fresh `Device` per placement (with the job's profile), so results are a
/// pure function of (graph, options) rather than of scheduling history —
/// the root of the service's determinism guarantee.
pub struct DevicePool {
    slots: Vec<Slot>,
    device: DeviceConfig,
    pooled_reserved: bool,
    pooled_jobs: u64,
}

impl DevicePool {
    /// A pool of `num_devices` slots (at least 1) of the given device model.
    pub fn new(num_devices: usize, device: DeviceConfig) -> Self {
        let n = num_devices.max(1);
        let slots = (0..n)
            .map(|_| Slot {
                capacity_bytes: device.global_mem_bytes,
                bytes_in_use: 0,
                in_flight: 0,
                jobs_completed: 0,
            })
            .collect();
        Self { slots, device, pooled_reserved: false, pooled_jobs: 0 }
    }

    /// Number of device slots.
    pub fn num_devices(&self) -> usize {
        self.slots.len()
    }

    /// The device model shared by every slot.
    pub fn device_config(&self) -> &DeviceConfig {
        &self.device
    }

    /// True when `footprint` can never fit a single device of this pool.
    pub fn needs_pool(&self, footprint: usize) -> bool {
        footprint > self.device.global_mem_bytes
    }

    /// Attempts to reserve capacity for a job of `footprint` bytes.
    ///
    /// Returns `None` when nothing can be reserved *right now* (the caller
    /// waits for a release); the pool never rejects a job permanently —
    /// oversized jobs queue for the exclusive pooled path.
    pub fn try_place(&mut self, footprint: usize) -> Option<Placement> {
        if self.pooled_reserved {
            // An exclusive multi-device run owns every slot.
            return None;
        }
        if self.needs_pool(footprint) {
            // Whole-pool reservation requires every slot idle.
            if self.slots.iter().all(|s| s.in_flight == 0) {
                self.pooled_reserved = true;
                return Some(Placement::Pooled);
            }
            return None;
        }
        // Best fit: the slot with the most free bytes takes the job (spreads
        // load); ties resolve to the lowest index (determinism).
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.capacity_bytes - s.bytes_in_use >= footprint)
            .max_by_key(|(i, s)| (s.capacity_bytes - s.bytes_in_use, usize::MAX - i))?
            .0;
        self.slots[best].bytes_in_use += footprint;
        self.slots[best].in_flight += 1;
        Some(Placement::Single(best))
    }

    /// Releases a reservation made by [`Self::try_place`].
    pub fn release(&mut self, placement: Placement, footprint: usize) {
        match placement {
            Placement::Single(i) => {
                let slot = &mut self.slots[i];
                slot.bytes_in_use = slot.bytes_in_use.saturating_sub(footprint);
                slot.in_flight = slot.in_flight.saturating_sub(1);
                slot.jobs_completed += 1;
            }
            Placement::Pooled => {
                self.pooled_reserved = false;
                self.pooled_jobs += 1;
            }
        }
    }

    /// Jobs that took the exclusive pooled path.
    pub fn pooled_jobs(&self) -> u64 {
        self.pooled_jobs
    }

    /// Point-in-time per-slot stats.
    pub fn slot_stats(&self) -> Vec<DeviceSlotStats> {
        self.slots
            .iter()
            .map(|s| DeviceSlotStats {
                jobs_completed: s.jobs_completed,
                bytes_in_use: s.bytes_in_use,
                in_flight: s.in_flight,
            })
            .collect()
    }

    /// Total in-flight placements (single + the pooled reservation).
    pub fn in_flight(&self) -> usize {
        self.slots.iter().map(|s| s.in_flight).sum::<usize>() + usize::from(self.pooled_reserved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize, mem: usize) -> DevicePool {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.global_mem_bytes = mem;
        DevicePool::new(n, cfg)
    }

    #[test]
    fn best_fit_spreads_and_ties_break_low() {
        let mut p = pool(3, 100);
        // All empty: tie → slot 0.
        assert_eq!(p.try_place(40), Some(Placement::Single(0)));
        // Slots 1 and 2 now have the most free bytes; tie → slot 1.
        assert_eq!(p.try_place(40), Some(Placement::Single(1)));
        assert_eq!(p.try_place(40), Some(Placement::Single(2)));
        // Every slot has 60 free: lowest index again, stacking two jobs.
        assert_eq!(p.try_place(40), Some(Placement::Single(0)));
        assert_eq!(p.in_flight(), 4);
        p.release(Placement::Single(0), 40);
        assert_eq!(p.slot_stats()[0].jobs_completed, 1);
    }

    #[test]
    fn full_slots_defer_rather_than_reject() {
        let mut p = pool(1, 100);
        assert_eq!(p.try_place(80), Some(Placement::Single(0)));
        assert_eq!(p.try_place(80), None, "no room now, caller waits");
        p.release(Placement::Single(0), 80);
        assert_eq!(p.try_place(80), Some(Placement::Single(0)));
    }

    #[test]
    fn oversized_jobs_take_the_pool_exclusively() {
        let mut p = pool(2, 100);
        assert!(p.needs_pool(150));
        assert_eq!(p.try_place(150), Some(Placement::Pooled));
        assert_eq!(p.try_place(10), None, "pooled run owns every slot");
        p.release(Placement::Pooled, 150);
        assert_eq!(p.pooled_jobs(), 1);
        assert_eq!(p.try_place(10), Some(Placement::Single(0)));
    }

    #[test]
    fn pooled_waits_for_idle_pool() {
        let mut p = pool(2, 100);
        assert_eq!(p.try_place(10), Some(Placement::Single(0)));
        assert_eq!(p.try_place(150), None, "busy slot blocks the exclusive reservation");
        p.release(Placement::Single(0), 10);
        assert_eq!(p.try_place(150), Some(Placement::Pooled));
    }
}
