//! The device-pool scheduler: placement of jobs onto N simulated devices by
//! estimated memory footprint, with per-device circuit breakers.
//!
//! Each pool slot models one accelerator with `global_mem_bytes` of device
//! memory. A job's footprint is [`cd_core::estimated_device_bytes`] — the
//! same accounting the driver's out-of-memory check uses, so a placement the
//! scheduler accepts is one the device will not immediately reject. Jobs
//! that fit a single device are placed best-fit (most free bytes, lowest
//! index on ties — deterministic). Jobs too large for any device take the
//! pooled path: an exclusive reservation of the whole pool for a sharded
//! out-of-core run (`cd_dist::louvain_sharded` — one shard per device,
//! ghost vertices, halo label exchange), which brings its own
//! failover/degradation ladder.
//!
//! ## Circuit breakers
//!
//! Each slot carries a three-state breaker driven by the server's
//! success/failure reports:
//!
//! * **Closed** (healthy): placements proceed normally. Device-attributable
//!   failures increment a consecutive-failure count; reaching
//!   [`BreakerConfig::failure_threshold`] trips the breaker.
//! * **Open** (quarantined): the slot takes no placements until its backoff
//!   expires. Backoff grows exponentially with consecutive trips
//!   ([`BreakerConfig::backoff_base`] × `backoff_multiplier`^trips, capped
//!   at [`BreakerConfig::backoff_max`]).
//! * **Half-open**: after the backoff elapses, the next placement
//!   *reinstates* the slot tentatively — one more failure re-trips it
//!   immediately (with a doubled backoff); a success closes it fully and
//!   resets the backoff.
//!
//! The pooled path deliberately ignores quarantine: the multi-device run
//! carries its own per-device failover ladder and can work around a broken
//! member on its own.

use cd_gpusim::DeviceConfig;
use std::time::{Duration, Instant};

/// Where the scheduler decided a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// One device slot, identified by pool index.
    Single(usize),
    /// The whole pool, exclusively (multi-device path).
    Pooled,
}

/// Circuit-breaker tuning shared by every slot of a pool.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive device-attributable failures that trip the breaker.
    pub failure_threshold: u32,
    /// Quarantine length after the first trip.
    pub backoff_base: Duration,
    /// Factor the quarantine grows by on each consecutive re-trip.
    pub backoff_multiplier: u32,
    /// Upper bound on any quarantine length.
    pub backoff_max: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            backoff_base: Duration::from_millis(100),
            backoff_multiplier: 2,
            backoff_max: Duration::from_secs(10),
        }
    }
}

impl BreakerConfig {
    /// The quarantine length after `trip_streak` consecutive trips (≥ 1).
    fn backoff_for(&self, trip_streak: u32) -> Duration {
        let mut backoff = self.backoff_base;
        for _ in 1..trip_streak {
            backoff = backoff.saturating_mul(self.backoff_multiplier.max(1));
            if backoff >= self.backoff_max {
                return self.backoff_max;
            }
        }
        backoff.min(self.backoff_max)
    }
}

/// Per-slot accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceSlotStats {
    /// Jobs that completed successfully on this slot (single-device
    /// placements only).
    pub jobs_completed: u64,
    /// Bytes currently reserved by in-flight placements.
    pub bytes_in_use: usize,
    /// In-flight single-device jobs on the slot.
    pub in_flight: usize,
    /// Device-attributable failures reported against the slot.
    pub failures: u64,
    /// Times the slot's breaker tripped into quarantine.
    pub trips: u64,
    /// True while the slot is quarantined (breaker open).
    pub quarantined: bool,
}

struct Slot {
    capacity_bytes: usize,
    bytes_in_use: usize,
    in_flight: usize,
    jobs_completed: u64,
    /// Failures since the last success (or reinstatement baseline).
    consecutive_failures: u32,
    /// Total failures reported against this slot.
    failures: u64,
    /// Total breaker trips.
    trips: u64,
    /// Consecutive trips without an intervening success — the backoff
    /// exponent.
    trip_streak: u32,
    /// `Some(t)`: quarantined until `t` (open until then, half-open after).
    quarantined_until: Option<Instant>,
}

impl Slot {
    fn quarantined(&self, now: Instant) -> bool {
        self.quarantined_until.is_some_and(|until| now < until)
    }
}

/// A pool of N simulated device slots with footprint-based placement.
///
/// The pool tracks *reservations*, not `Device` objects: the server builds a
/// fresh `Device` per placement (with the job's profile), so results are a
/// pure function of (graph, options) rather than of scheduling history —
/// the root of the service's determinism guarantee.
pub struct DevicePool {
    slots: Vec<Slot>,
    device: DeviceConfig,
    breaker: BreakerConfig,
    pooled_reserved: bool,
    pooled_jobs: u64,
    breaker_trips: u64,
    breaker_reinstatements: u64,
}

impl DevicePool {
    /// A pool of `num_devices` slots (at least 1) of the given device model,
    /// with the default breaker tuning.
    pub fn new(num_devices: usize, device: DeviceConfig) -> Self {
        let n = num_devices.max(1);
        let slots = (0..n)
            .map(|_| Slot {
                capacity_bytes: device.global_mem_bytes,
                bytes_in_use: 0,
                in_flight: 0,
                jobs_completed: 0,
                consecutive_failures: 0,
                failures: 0,
                trips: 0,
                trip_streak: 0,
                quarantined_until: None,
            })
            .collect();
        Self {
            slots,
            device,
            breaker: BreakerConfig::default(),
            pooled_reserved: false,
            pooled_jobs: 0,
            breaker_trips: 0,
            breaker_reinstatements: 0,
        }
    }

    /// Returns the pool with its breaker tuning replaced.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Number of device slots.
    pub fn num_devices(&self) -> usize {
        self.slots.len()
    }

    /// The device model shared by every slot.
    pub fn device_config(&self) -> &DeviceConfig {
        &self.device
    }

    /// True when `footprint` can never fit a single device of this pool.
    pub fn needs_pool(&self, footprint: usize) -> bool {
        footprint > self.device.global_mem_bytes
    }

    /// Attempts to reserve capacity for a job of `footprint` bytes.
    /// Equivalent to [`Self::try_place_at`] with no avoided slot, evaluated
    /// now.
    pub fn try_place(&mut self, footprint: usize) -> Option<Placement> {
        self.try_place_at(footprint, None, Instant::now())
    }

    /// Attempts to reserve capacity for a job of `footprint` bytes,
    /// skipping quarantined slots and — when another healthy slot exists —
    /// the `avoid` slot a previous attempt of the same job failed on.
    ///
    /// Returns `None` when nothing can be reserved *right now* (the caller
    /// waits for a release or a quarantine expiry); the pool never rejects
    /// a job permanently — oversized jobs queue for the exclusive pooled
    /// path, and a fully-quarantined pool heals as backoffs elapse.
    pub fn try_place_at(
        &mut self,
        footprint: usize,
        avoid: Option<usize>,
        now: Instant,
    ) -> Option<Placement> {
        if self.pooled_reserved {
            // An exclusive multi-device run owns every slot.
            return None;
        }
        if self.needs_pool(footprint) {
            // Whole-pool reservation requires every slot idle. Quarantine is
            // ignored: the multi-device path has its own failover ladder.
            if self.slots.iter().all(|s| s.in_flight == 0) {
                self.pooled_reserved = true;
                return Some(Placement::Pooled);
            }
            return None;
        }
        // Only avoid the failed slot when some other non-quarantined slot
        // could take the job at all — with a single healthy slot left, a
        // retry there beats never running.
        let avoid = avoid
            .filter(|&a| self.slots.iter().enumerate().any(|(i, s)| i != a && !s.quarantined(now)));
        // Best fit: the slot with the most free bytes takes the job (spreads
        // load); ties resolve to the lowest index (determinism).
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                Some(*i) != avoid
                    && !s.quarantined(now)
                    && s.capacity_bytes - s.bytes_in_use >= footprint
            })
            .max_by_key(|(i, s)| (s.capacity_bytes - s.bytes_in_use, usize::MAX - i))?
            .0;
        let slot = &mut self.slots[best];
        if slot.quarantined_until.take().is_some() {
            // Half-open: the backoff elapsed and the slot takes this job
            // tentatively — one more failure re-trips immediately.
            slot.consecutive_failures = self.breaker.failure_threshold.saturating_sub(1);
            self.breaker_reinstatements += 1;
        }
        slot.bytes_in_use += footprint;
        slot.in_flight += 1;
        Some(Placement::Single(best))
    }

    /// Releases a reservation made by [`Self::try_place`] /
    /// [`Self::try_place_at`]. Says nothing about the outcome — report that
    /// separately with [`Self::note_success`] / [`Self::note_failure`].
    pub fn release(&mut self, placement: Placement, footprint: usize) {
        match placement {
            Placement::Single(i) => {
                let slot = &mut self.slots[i];
                slot.bytes_in_use = slot.bytes_in_use.saturating_sub(footprint);
                slot.in_flight = slot.in_flight.saturating_sub(1);
            }
            Placement::Pooled => {
                self.pooled_reserved = false;
                self.pooled_jobs += 1;
            }
        }
    }

    /// Reports a successful run on a slot: counts the completion and fully
    /// closes the slot's breaker (failure count, backoff streak, and any
    /// half-open tentativeness all reset).
    pub fn note_success(&mut self, slot: usize) {
        let s = &mut self.slots[slot];
        s.jobs_completed += 1;
        s.consecutive_failures = 0;
        s.trip_streak = 0;
        s.quarantined_until = None;
    }

    /// Reports a device-attributable failure on a slot. Returns the
    /// quarantine length when this failure tripped the breaker, `None` when
    /// the slot merely accumulated a strike.
    pub fn note_failure(&mut self, slot: usize, now: Instant) -> Option<Duration> {
        let threshold = self.breaker.failure_threshold.max(1);
        let s = &mut self.slots[slot];
        s.failures += 1;
        s.consecutive_failures += 1;
        if s.consecutive_failures < threshold {
            return None;
        }
        s.consecutive_failures = 0;
        s.trip_streak += 1;
        s.trips += 1;
        self.breaker_trips += 1;
        let backoff = self.breaker.backoff_for(s.trip_streak);
        s.quarantined_until = Some(now + backoff);
        Some(backoff)
    }

    /// Clears every quarantine immediately. The shutdown drain uses this so
    /// queued work can still terminate instead of waiting out backoffs that
    /// will never be observed again.
    pub fn lift_quarantines(&mut self) {
        for s in &mut self.slots {
            s.quarantined_until = None;
        }
    }

    /// Slots currently quarantined.
    pub fn quarantined_devices(&self) -> usize {
        let now = Instant::now();
        self.slots.iter().filter(|s| s.quarantined(now)).count()
    }

    /// Total breaker trips across the pool.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips
    }

    /// Total half-open reinstatements across the pool.
    pub fn breaker_reinstatements(&self) -> u64 {
        self.breaker_reinstatements
    }

    /// Jobs that took the exclusive pooled path.
    pub fn pooled_jobs(&self) -> u64 {
        self.pooled_jobs
    }

    /// Point-in-time per-slot stats.
    pub fn slot_stats(&self) -> Vec<DeviceSlotStats> {
        let now = Instant::now();
        self.slots
            .iter()
            .map(|s| DeviceSlotStats {
                jobs_completed: s.jobs_completed,
                bytes_in_use: s.bytes_in_use,
                in_flight: s.in_flight,
                failures: s.failures,
                trips: s.trips,
                quarantined: s.quarantined(now),
            })
            .collect()
    }

    /// Total in-flight placements (single + the pooled reservation).
    pub fn in_flight(&self) -> usize {
        self.slots.iter().map(|s| s.in_flight).sum::<usize>() + usize::from(self.pooled_reserved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize, mem: usize) -> DevicePool {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.global_mem_bytes = mem;
        DevicePool::new(n, cfg)
    }

    #[test]
    fn best_fit_spreads_and_ties_break_low() {
        let mut p = pool(3, 100);
        // All empty: tie → slot 0.
        assert_eq!(p.try_place(40), Some(Placement::Single(0)));
        // Slots 1 and 2 now have the most free bytes; tie → slot 1.
        assert_eq!(p.try_place(40), Some(Placement::Single(1)));
        assert_eq!(p.try_place(40), Some(Placement::Single(2)));
        // Every slot has 60 free: lowest index again, stacking two jobs.
        assert_eq!(p.try_place(40), Some(Placement::Single(0)));
        assert_eq!(p.in_flight(), 4);
        p.release(Placement::Single(0), 40);
        p.note_success(0);
        assert_eq!(p.slot_stats()[0].jobs_completed, 1);
    }

    #[test]
    fn full_slots_defer_rather_than_reject() {
        let mut p = pool(1, 100);
        assert_eq!(p.try_place(80), Some(Placement::Single(0)));
        assert_eq!(p.try_place(80), None, "no room now, caller waits");
        p.release(Placement::Single(0), 80);
        assert_eq!(p.try_place(80), Some(Placement::Single(0)));
    }

    #[test]
    fn oversized_jobs_take_the_pool_exclusively() {
        let mut p = pool(2, 100);
        assert!(p.needs_pool(150));
        assert_eq!(p.try_place(150), Some(Placement::Pooled));
        assert_eq!(p.try_place(10), None, "pooled run owns every slot");
        p.release(Placement::Pooled, 150);
        assert_eq!(p.pooled_jobs(), 1);
        assert_eq!(p.try_place(10), Some(Placement::Single(0)));
    }

    #[test]
    fn pooled_waits_for_idle_pool() {
        let mut p = pool(2, 100);
        assert_eq!(p.try_place(10), Some(Placement::Single(0)));
        assert_eq!(p.try_place(150), None, "busy slot blocks the exclusive reservation");
        p.release(Placement::Single(0), 10);
        assert_eq!(p.try_place(150), Some(Placement::Pooled));
    }

    #[test]
    fn breaker_trips_after_threshold_and_quarantines() {
        let now = Instant::now();
        let mut p = pool(2, 100).with_breaker(BreakerConfig {
            failure_threshold: 2,
            backoff_base: Duration::from_secs(1),
            backoff_multiplier: 2,
            backoff_max: Duration::from_secs(8),
        });
        assert_eq!(p.note_failure(0, now), None, "first strike only");
        let backoff = p.note_failure(0, now).expect("second strike trips");
        assert_eq!(backoff, Duration::from_secs(1));
        assert_eq!(p.breaker_trips(), 1);
        assert!(p.slot_stats()[0].trips == 1 && p.slot_stats()[0].failures == 2);
        // Quarantined slot 0 is skipped; placements land on slot 1.
        assert_eq!(p.try_place_at(10, None, now), Some(Placement::Single(1)));
        assert_eq!(p.try_place_at(10, None, now), Some(Placement::Single(1)));
    }

    #[test]
    fn half_open_reinstates_then_retrips_with_doubled_backoff() {
        let now = Instant::now();
        let mut p = pool(1, 100).with_breaker(BreakerConfig {
            failure_threshold: 2,
            backoff_base: Duration::from_secs(1),
            backoff_multiplier: 2,
            backoff_max: Duration::from_secs(8),
        });
        p.note_failure(0, now);
        p.note_failure(0, now);
        assert_eq!(p.try_place_at(10, None, now), None, "open breaker takes nothing");
        // Backoff elapsed: half-open — the slot takes one tentative job.
        let later = now + Duration::from_secs(2);
        assert_eq!(p.try_place_at(10, None, later), Some(Placement::Single(0)));
        assert_eq!(p.breaker_reinstatements(), 1);
        p.release(Placement::Single(0), 10);
        // One failure in half-open re-trips immediately, with doubled backoff.
        assert_eq!(p.note_failure(0, later), Some(Duration::from_secs(2)));
        // A success after the next reinstatement closes the breaker fully.
        let even_later = later + Duration::from_secs(4);
        assert_eq!(p.try_place_at(10, None, even_later), Some(Placement::Single(0)));
        p.release(Placement::Single(0), 10);
        p.note_success(0);
        assert_eq!(p.note_failure(0, even_later), None, "streak reset: back to two strikes");
        assert_eq!(p.slot_stats()[0].jobs_completed, 1);
    }

    #[test]
    fn avoid_slot_is_skipped_only_when_alternatives_exist() {
        let now = Instant::now();
        let mut p = pool(2, 100);
        // Slot 0 would win best-fit; avoiding it lands on slot 1.
        assert_eq!(p.try_place_at(10, Some(0), now), Some(Placement::Single(1)));
        // With slot 1 the only alternative quarantined, the avoided slot is
        // used anyway — better a retry there than never running.
        let mut lone = pool(2, 100)
            .with_breaker(BreakerConfig { failure_threshold: 1, ..BreakerConfig::default() });
        lone.note_failure(1, now);
        assert_eq!(lone.try_place_at(10, Some(0), now), Some(Placement::Single(0)));
    }

    #[test]
    fn backoff_caps_at_max() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            backoff_base: Duration::from_secs(1),
            backoff_multiplier: 10,
            backoff_max: Duration::from_secs(5),
        };
        assert_eq!(cfg.backoff_for(1), Duration::from_secs(1));
        assert_eq!(cfg.backoff_for(2), Duration::from_secs(5));
        assert_eq!(cfg.backoff_for(30), Duration::from_secs(5), "no overflow at deep streaks");
    }

    #[test]
    fn lift_quarantines_reopens_the_pool() {
        let now = Instant::now();
        let mut p = pool(1, 100).with_breaker(BreakerConfig {
            failure_threshold: 1,
            backoff_base: Duration::from_secs(3600),
            ..BreakerConfig::default()
        });
        p.note_failure(0, now);
        assert_eq!(p.try_place_at(10, None, now), None);
        assert_eq!(p.quarantined_devices(), 1);
        p.lift_quarantines();
        assert!(p.try_place_at(10, None, now).is_some());
    }
}
