//! The typed job API: what a client submits, what it gets back, and every
//! state a job can be observed in.
//!
//! A *job* is one community-detection request — a graph plus
//! [`JobOptions`] — moving through the lifecycle
//! `Queued → Running → {Completed, Failed, Cancelled, Expired}`. Admission
//! failures ([`Rejected`]) happen before a job exists and are reported
//! synchronously from [`crate::Server::submit`].

use cd_core::{Algorithm, GpuLouvainConfig, GpuLouvainError};
use cd_gpusim::{FaultPlan, Profile};
use cd_graph::Partition;
use std::sync::Arc;
use std::time::Duration;

/// Opaque identifier of an accepted job. Ids are assigned in submission
/// order and never reused within a server's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The raw submission sequence number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling priority. The queue dequeues strictly by priority, FIFO
/// (submission order) within a priority class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: dequeued only when nothing else waits.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work: always dequeued first.
    High,
}

impl Priority {
    /// All priorities, lowest first.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];
}

/// Deterministic fault injection scoped to one device slot of the pool —
/// the serving-layer hook into the PR 1 fault machinery, used to exercise
/// the circuit breakers end to end.
///
/// When a job carrying a `DeviceFault` is placed on slot `device`, its
/// fresh `Device` is built with `plan` attached; on any other slot the job
/// runs fault-free. Because the fault decisions are a pure function of the
/// plan seed, "device N is broken" replays identically run after run.
/// Active plans require [`Profile::Instrumented`] (the fast and racecheck
/// profiles reject fault injection at device construction).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceFault {
    /// Pool slot index the plan applies to.
    pub device: usize,
    /// The fault schedule injected on that slot.
    pub plan: FaultPlan,
}

/// Per-job options: the algorithm selection and configuration, the
/// execution profile, and the scheduling knobs.
///
/// The algorithm (and its configuration) and fault plan are *semantic* —
/// they select what result is computed and participate in the cache key.
/// Priority and deadline are *scheduling* — they decide when (and whether)
/// the job runs and are deliberately excluded from the key, so a
/// high-priority resubmission of cached work is still a cache hit. The
/// execution profile is neither: the four-way equivalence guarantee makes
/// every profile produce the same bits, so profiles share a cache line.
#[derive(Clone, Copy, Debug)]
pub struct JobOptions {
    /// Which portfolio algorithm the job runs ([`Algorithm::Louvain`] by
    /// default). Result-affecting: two submissions of the same graph under
    /// different algorithms never share a cache entry.
    pub algorithm: Algorithm,
    /// Algorithm configuration (thresholds, pruning, buckets, …).
    pub config: GpuLouvainConfig,
    /// Execution profile the job's device is built with. Defaults to
    /// [`Profile::Fast`]: a serving layer wants throughput, and the
    /// backend-equivalence guarantee (labels and Q bit-identical across
    /// profiles) means nothing semantic is lost.
    pub profile: Profile,
    /// Scheduling priority.
    pub priority: Priority,
    /// Deadline relative to submission. Checked at admission, by the
    /// periodic queue sweep, at the queue-dequeue checkpoint, and at every
    /// stage checkpoint of the run; an expired job terminates as
    /// [`JobOutcome::Expired`].
    pub deadline: Option<Duration>,
    /// Slot-targeted fault injection (tests and fault drills only). `None`
    /// — the default — runs fault-free everywhere.
    pub fault: Option<DeviceFault>,
}

impl Default for JobOptions {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::Louvain,
            config: GpuLouvainConfig::paper_default(),
            profile: Profile::Fast,
            priority: Priority::Normal,
            deadline: None,
            fault: None,
        }
    }
}

impl JobOptions {
    /// Returns the options with the given portfolio algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns the options with vertex pruning set.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.config.pruning = pruning;
        self
    }

    /// Returns the options with the given execution profile.
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Returns the options with the given priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns the options with a deadline relative to submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the options with a slot-targeted fault plan.
    pub fn with_fault(mut self, device: usize, plan: FaultPlan) -> Self {
        self.fault = Some(DeviceFault { device, plan });
        self
    }
}

/// How a delta submission names the graph it patches: by a previously
/// accepted job (the delta applies to that job's input graph) or by a graph
/// hash the server already knows — a structural hash from a plain
/// submission, or the chained hash of an earlier delta job, which is how
/// chains extend: `submit` → `submit_delta` → `submit_delta` …
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaBase {
    /// The input graph of this previously accepted job.
    Job(JobId),
    /// A graph hash registered by an earlier submission: the structural
    /// hash of a submitted graph, or the chained hash of a delta job
    /// (see [`crate::chained_graph_hash`]).
    Graph(u64),
}

/// Why a submission was refused at the door. Rejections are synchronous: no
/// job id is assigned and nothing is queued — the explicit backpressure
/// signal a caller uses to shed or retry load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded submission queue is at capacity.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// A delta submission referenced a base the server does not know — an
    /// unknown job id, or a graph hash no prior submission registered.
    UnknownBase {
        /// The job id or graph hash the delta referenced.
        base: u64,
    },
    /// The delta batch does not apply to its base graph (vertex out of
    /// range, deleting a missing edge, …). The reason is the rendered
    /// [`cd_graph::DeltaError`]; nothing was queued and the base is
    /// unchanged.
    InvalidDelta {
        /// Human-readable rendering of the typed delta error.
        reason: String,
    },
    /// The graph exceeds the 32-bit vertex id space of the kernels; no
    /// device or degradation path could ever run it.
    TooManyVertices(usize),
    /// SLO-aware shedding: the server's execution-time estimate for this
    /// job already exceeds the submitted deadline budget, so admitting it
    /// would only burn queue and device time on a result nobody can use.
    /// Only raised when a deadline is set and the estimator has observed
    /// enough completed runs to extrapolate from.
    WontMeetDeadline {
        /// Estimated execution time of the job.
        estimated: Duration,
        /// The deadline budget the submission carried.
        budget: Duration,
    },
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            Rejected::UnknownBase { base } => {
                write!(f, "delta references unknown base {base:#x}")
            }
            Rejected::InvalidDelta { reason } => {
                write!(f, "delta does not apply to its base: {reason}")
            }
            Rejected::TooManyVertices(n) => {
                write!(f, "{n} vertices exceed the 32-bit vertex id space")
            }
            Rejected::WontMeetDeadline { estimated, budget } => write!(
                f,
                "estimated execution time {estimated:?} exceeds the deadline budget {budget:?}"
            ),
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Observable lifecycle state of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting in the queue (or attached to an in-flight identical
    /// job — see [`ExecPath::Coalesced`]).
    Queued,
    /// Placed on a device and executing.
    Running,
    /// Finished with a result.
    Completed,
    /// Finished with a typed error.
    Failed,
    /// Cancelled at a checkpoint before producing a result.
    Cancelled,
    /// Its deadline passed before it could produce a result.
    Expired,
}

/// How a completed job's result was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecPath {
    /// Served from the content-addressed result cache at submission.
    CacheHit,
    /// Attached to an identical in-flight job and handed its result — the
    /// in-flight twin of a cache hit (request coalescing).
    Coalesced,
    /// Ran on a single device of the pool.
    SingleDevice {
        /// Pool slot index the job ran on.
        device: usize,
    },
    /// Ran on a single device after one or more placements failed with a
    /// device-attributable error — the circuit-breaker recovery path. The
    /// result is bit-identical to a first-try run (placement never changes
    /// what a job computes), but the path records that failover happened.
    FailedOver {
        /// Pool slot index of the device that finally produced the result.
        device: usize,
        /// Total placements, including the failed ones (≥ 2).
        attempts: usize,
    },
    /// Too large for any single device: ran through the sharded
    /// out-of-core engine (`cd_dist::louvain_sharded`) across the whole
    /// pool — one shard per device, ghost vertices, halo label exchange —
    /// with its failover/degradation ladder.
    DevicePool {
        /// Devices (shards) the sharded run used.
        devices: usize,
        /// True when any work item degraded to the sequential host baseline.
        degraded: bool,
    },
}

impl ExecPath {
    /// True for the two work-reuse paths (cache hit, coalesced).
    pub fn is_shared(self) -> bool {
        matches!(self, ExecPath::CacheHit | ExecPath::Coalesced)
    }

    /// Short label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ExecPath::CacheHit => "cache-hit",
            ExecPath::Coalesced => "coalesced",
            ExecPath::SingleDevice { .. } => "single",
            ExecPath::FailedOver { .. } => "failed-over",
            ExecPath::DevicePool { degraded: false, .. } => "pooled",
            ExecPath::DevicePool { degraded: true, .. } => "pooled-degraded",
        }
    }
}

/// The payload of a completed job. One `Arc<ServeResult>` is shared by the
/// producing run, the result cache, and every coalesced or cache-hit job
/// that reuses it — which is what makes reuse bit-identical *by
/// construction*: there is only one value.
#[derive(Debug)]
pub struct ServeResult {
    /// Final communities of the input graph's vertices.
    pub partition: Partition,
    /// Modularity of `partition` on the input graph.
    pub modularity: f64,
    /// Driver stages the producing run executed (0 for the multi-device
    /// path, which reports no stage breakdown).
    pub stages: usize,
}

/// Terminal outcome of a job, as returned by
/// [`crate::Server::await_result`].
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The job produced (or reused) a result.
    Completed {
        /// The shared result payload.
        result: Arc<ServeResult>,
        /// How this particular job obtained it.
        path: ExecPath,
    },
    /// The run failed with a typed error; its `source()` chain reaches the
    /// root cause (rejected device configuration, failed launch, …).
    Failed(Arc<GpuLouvainError>),
    /// Cancelled at a checkpoint: `stage` is the stage checkpoint that saw
    /// the flag, or `None` when the job never started running.
    Cancelled {
        /// Stage checkpoint that observed the cancellation.
        stage: Option<usize>,
    },
    /// The deadline passed: at a stage checkpoint (`Some`), or while still
    /// queued (`None`).
    Expired {
        /// Stage checkpoint that observed the expiry.
        stage: Option<usize>,
    },
}

impl JobOutcome {
    /// The terminal status this outcome corresponds to.
    pub fn status(&self) -> JobStatus {
        match self {
            JobOutcome::Completed { .. } => JobStatus::Completed,
            JobOutcome::Failed(_) => JobStatus::Failed,
            JobOutcome::Cancelled { .. } => JobStatus::Cancelled,
            JobOutcome::Expired { .. } => JobStatus::Expired,
        }
    }

    /// The result payload, when completed.
    pub fn result(&self) -> Option<&Arc<ServeResult>> {
        match self {
            JobOutcome::Completed { result, .. } => Some(result),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn options_builders() {
        let o = JobOptions::default()
            .with_algorithm(Algorithm::LpaSync)
            .with_pruning(true)
            .with_profile(Profile::Racecheck)
            .with_priority(Priority::High)
            .with_deadline(Duration::from_secs(1));
        assert_eq!(o.algorithm, Algorithm::LpaSync);
        assert!(o.config.pruning);
        assert_eq!(o.profile, Profile::Racecheck);
        assert_eq!(o.priority, Priority::High);
        assert_eq!(o.deadline, Some(Duration::from_secs(1)));
        assert_eq!(JobOptions::default().profile, Profile::Fast);
        assert_eq!(JobOptions::default().algorithm, Algorithm::Louvain);
    }

    #[test]
    fn rejection_and_path_labels() {
        assert!(Rejected::QueueFull { capacity: 8 }.to_string().contains("capacity 8"));
        assert!(ExecPath::CacheHit.is_shared());
        assert!(ExecPath::Coalesced.is_shared());
        assert!(!ExecPath::SingleDevice { device: 0 }.is_shared());
        assert_eq!(ExecPath::DevicePool { devices: 4, degraded: true }.label(), "pooled-degraded");
    }
}
