//! Closed-loop load generation: a seeded arrival trace over the workload
//! suite, replayed by N concurrent clients against a [`Server`].
//!
//! *Closed-loop* means each client submits, awaits the outcome, then
//! submits its next job — offered load adapts to service rate, so the
//! generator measures the service, not its own queueing. The trace (job
//! order, option mix, priorities) is a pure function of
//! [`TraceConfig::seed`]: replaying the same config against two fresh
//! servers must produce identical results job-for-job, which is exactly
//! what the `repro serve` determinism check does — it compares the
//! [`TraceReport::result_digest`] of two replays.

use crate::hash::Fnv1a;
use crate::job::{JobOptions, JobOutcome, JobStatus, Priority, Rejected};
use crate::metrics::ServeMetrics;
use crate::server::Server;
use cd_graph::Csr;
use cd_workloads::{Scale, UnknownWorkload, SUITE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Parameters of a synthetic arrival trace.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Seed of everything random in the trace (order, priorities).
    pub seed: u64,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Times the per-pass job list is replayed. With the default 2, the
    /// second pass exercises the content-addressed cache end to end.
    pub passes: usize,
    /// Copies of each distinct job per pass. With the default 2, identical
    /// jobs land close together and exercise in-flight coalescing.
    pub duplicates: usize,
    /// Scale every workload is built at.
    pub scale: Scale,
    /// Workload names (defaults to the whole suite).
    pub workloads: Vec<String>,
    /// Options every job starts from (profile, thresholds, …).
    pub base: JobOptions,
    /// Submit each workload both with and without pruning, doubling the
    /// distinct-key count.
    pub vary_pruning: bool,
}

impl TraceConfig {
    /// The default trace at a given scale: the full suite, 4 clients,
    /// 2 passes × 2 duplicates, pruning varied.
    pub fn suite(scale: Scale) -> Self {
        Self {
            seed: 0x5eed_cafe,
            clients: 4,
            passes: 2,
            duplicates: 2,
            scale,
            workloads: SUITE.iter().map(|w| w.name.to_string()).collect(),
            base: JobOptions::default(),
            vary_pruning: true,
        }
    }
}

/// One planned submission of the trace.
#[derive(Clone, Debug)]
struct PlannedJob {
    workload: usize,
    pruning: bool,
    priority: Priority,
}

/// What one job of the trace did, recorded at its trace position.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Workload name.
    pub workload: String,
    /// Whether pruning was on.
    pub pruning: bool,
    /// Priority the trace assigned.
    pub priority: Priority,
    /// Server-assigned job id.
    pub job_id: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// Execution-path label (`"cache-hit"`, `"coalesced"`, `"single"`, …);
    /// `"-"` for non-completed jobs.
    pub path: &'static str,
    /// Modularity bit pattern, when completed.
    pub modularity_bits: Option<u64>,
    /// FNV-1a over the result's community labels, when completed.
    pub labels_hash: Option<u64>,
    /// Submission → terminal latency.
    pub latency: Duration,
    /// `QueueFull` rejections absorbed before this job was admitted.
    pub retries: u64,
}

/// Everything a trace replay produced.
#[derive(Debug)]
pub struct TraceReport {
    /// Per-job records, in trace order (index = trace position).
    pub records: Vec<JobRecord>,
    /// Wall time of the replay.
    pub wall: Duration,
    /// Server metrics snapshot taken at the end of the replay.
    pub metrics: ServeMetrics,
    /// Trace positions that never produced a record (must be 0).
    pub lost: usize,
    /// Job ids appearing more than once across records (must be 0).
    pub duplicated: usize,
}

impl TraceReport {
    /// FNV-1a digest over the *semantic* outcome of every trace position:
    /// workload, pruning, status, modularity bits, labels hash. Timing and
    /// execution path are excluded — they legitimately vary run to run —
    /// so two replays of the same seeded trace must produce equal digests.
    pub fn result_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for r in &self.records {
            h.write_bytes(r.workload.as_bytes());
            h.write_u64(r.pruning as u64);
            h.write_u64(r.status as u64);
            h.write_u64(r.modularity_bits.unwrap_or(0));
            h.write_u64(r.labels_hash.unwrap_or(0));
        }
        h.finish()
    }

    /// True when every record sharing a (workload, pruning) key reports
    /// bit-identical modularity and labels — the cache/coalescing
    /// bit-identity guarantee, checked across the whole replay.
    pub fn results_consistent(&self) -> bool {
        let mut seen: HashMap<(&str, bool), (u64, u64)> = HashMap::new();
        for r in &self.records {
            let (Some(m), Some(l)) = (r.modularity_bits, r.labels_hash) else { continue };
            match seen.entry((r.workload.as_str(), r.pruning)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((m, l));
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != (m, l) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Completed records.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.status == JobStatus::Completed).count()
    }

    /// Jobs per second of wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.records.len() as f64 / self.wall.as_secs_f64()
        }
    }
}

/// FNV-1a over a partition's labels.
pub fn labels_fnv(labels: &[u32]) -> u64 {
    let mut h = Fnv1a::new();
    for &l in labels {
        h.write_u64(l as u64);
    }
    h.finish()
}

/// Expands, seeds, and shuffles the trace into its submission order.
/// Deterministic in `cfg` alone.
fn plan(cfg: &TraceConfig) -> Vec<PlannedJob> {
    let mut jobs = Vec::new();
    for pass in 0..cfg.passes {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (pass as u64).wrapping_mul(0x9e37_79b9));
        let mut pass_jobs = Vec::new();
        for (wi, _) in cfg.workloads.iter().enumerate() {
            let variants: &[bool] = if cfg.vary_pruning { &[false, true] } else { &[false] };
            for &pruning in variants {
                for _ in 0..cfg.duplicates.max(1) {
                    pass_jobs.push(PlannedJob {
                        workload: wi,
                        pruning,
                        priority: Priority::Normal,
                    });
                }
            }
        }
        // Fisher–Yates (the vendored rand has no shuffle adaptor).
        for i in (1..pass_jobs.len()).rev() {
            let j = rng.gen_range(0..=i);
            pass_jobs.swap(i, j);
        }
        for job in &mut pass_jobs {
            job.priority = Priority::ALL[rng.gen_range(0..Priority::ALL.len())];
        }
        jobs.extend(pass_jobs);
    }
    jobs
}

/// Builds every workload the trace references, once, shared across jobs.
fn build_graphs(cfg: &TraceConfig) -> Result<Vec<Arc<Csr>>, UnknownWorkload> {
    cfg.workloads
        .iter()
        .map(|name| cd_workloads::load(name, cfg.scale).map(|w| Arc::new(w.graph)))
        .collect()
}

/// Replays the trace against `server` with `cfg.clients` concurrent
/// closed-loop clients and collects the per-job records.
///
/// `QueueFull` rejections are retried (closed-loop clients back off and
/// resubmit — the job is not lost, and the retry count is recorded);
/// `ShuttingDown` and `TooManyVertices` terminate the client's job with no
/// record, surfacing as `lost`.
pub fn run_trace(server: &Server, cfg: &TraceConfig) -> Result<TraceReport, UnknownWorkload> {
    let planned = plan(cfg);
    let graphs = build_graphs(cfg)?;
    let records: Mutex<Vec<Option<JobRecord>>> = Mutex::new(vec![None; planned.len()]);
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..cfg.clients.max(1) {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::SeqCst);
                let Some(job) = planned.get(idx) else { return };
                let graph = Arc::clone(&graphs[job.workload]);
                let options = cfg.base.with_pruning(job.pruning).with_priority(job.priority);
                let submitted = Instant::now();
                let mut retries = 0u64;
                let id = loop {
                    match server.submit(Arc::clone(&graph), options) {
                        Ok(id) => break id,
                        Err(Rejected::QueueFull { .. }) => {
                            retries += 1;
                            std::thread::yield_now();
                        }
                        Err(_) => return,
                    }
                };
                let outcome = server.await_result(id);
                let (path, modularity_bits, labels_hash) = match &outcome {
                    JobOutcome::Completed { result, path } => (
                        path.label(),
                        Some(result.modularity.to_bits()),
                        Some(labels_fnv(result.partition.as_slice())),
                    ),
                    _ => ("-", None, None),
                };
                let record = JobRecord {
                    workload: cfg.workloads[job.workload].clone(),
                    pruning: job.pruning,
                    priority: job.priority,
                    job_id: id.as_u64(),
                    status: outcome.status(),
                    path,
                    modularity_bits,
                    labels_hash,
                    latency: submitted.elapsed(),
                    retries,
                };
                records.lock().unwrap_or_else(|p| p.into_inner())[idx] = Some(record);
            });
        }
    });

    let wall = start.elapsed();
    let slots = records.into_inner().unwrap_or_else(|p| p.into_inner());
    let lost = slots.iter().filter(|r| r.is_none()).count();
    let records: Vec<JobRecord> = slots.into_iter().flatten().collect();
    let mut ids: Vec<u64> = records.iter().map(|r| r.job_id).collect();
    ids.sort_unstable();
    let unique = {
        let mut v = ids.clone();
        v.dedup();
        v.len()
    };
    let duplicated = ids.len() - unique;
    Ok(TraceReport { records, wall, metrics: server.metrics(), lost, duplicated })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TraceConfig {
        TraceConfig {
            workloads: vec!["road-usa".into(), "com-dblp".into()],
            ..TraceConfig::suite(Scale::Tiny)
        }
    }

    #[test]
    fn plan_is_deterministic_and_complete() {
        let cfg = tiny_cfg();
        let a = plan(&cfg);
        let b = plan(&cfg);
        // 2 workloads × 2 pruning × 2 duplicates × 2 passes.
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.workload, x.pruning, x.priority), (y.workload, y.pruning, y.priority));
        }
        // A different seed reorders.
        let other = plan(&TraceConfig { seed: 99, ..cfg });
        assert!(a
            .iter()
            .zip(&other)
            .any(|(x, y)| (x.workload, x.pruning) != (y.workload, y.pruning)));
    }

    #[test]
    fn unknown_workload_is_reported() {
        let cfg = TraceConfig {
            workloads: vec!["no-such-graph".into()],
            ..TraceConfig::suite(Scale::Tiny)
        };
        assert!(build_graphs(&cfg).is_err());
    }
}
