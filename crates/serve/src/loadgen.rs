//! Load generation against a [`Server`], in two modes.
//!
//! **Closed-loop** ([`run_trace`]): a seeded arrival trace over the
//! workload suite, replayed by N concurrent clients. Each client submits,
//! awaits the outcome, then submits its next job — offered load adapts to
//! service rate, so the generator measures the service, not its own
//! queueing. The trace (job order, option mix, priorities) is a pure
//! function of [`TraceConfig::seed`]: replaying the same config against
//! two fresh servers must produce identical results job-for-job, which is
//! exactly what the `repro serve` determinism check does — it compares the
//! [`TraceReport::result_digest`] of two replays.
//!
//! **Open-loop** ([`run_open_loop`]): seeded Poisson arrivals at a fixed
//! rate that does *not* adapt to the service — arrivals keep coming whether
//! or not the server keeps up, which is the only honest way to measure
//! overload. Every arrival is a distinct content key (see
//! [`distinct_rings`]), so coalescing and caching cannot quietly absorb
//! the offered load. The `repro overload` experiment sweeps the arrival
//! rate to locate the saturation knee and verifies the shedding machinery
//! keeps latency bounded past it.

use crate::hash::Fnv1a;
use crate::job::{JobId, JobOptions, JobOutcome, JobStatus, Priority, Rejected};
use crate::metrics::{LatencyStats, ServeMetrics};
use crate::server::Server;
use cd_graph::{Csr, GraphBuilder, VertexId};
use cd_workloads::{Scale, UnknownWorkload, SUITE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Parameters of a synthetic arrival trace.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Seed of everything random in the trace (order, priorities).
    pub seed: u64,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Times the per-pass job list is replayed. With the default 2, the
    /// second pass exercises the content-addressed cache end to end.
    pub passes: usize,
    /// Copies of each distinct job per pass. With the default 2, identical
    /// jobs land close together and exercise in-flight coalescing.
    pub duplicates: usize,
    /// Scale every workload is built at.
    pub scale: Scale,
    /// Workload names (defaults to the whole suite).
    pub workloads: Vec<String>,
    /// Options every job starts from (profile, thresholds, …).
    pub base: JobOptions,
    /// Submit each workload both with and without pruning, doubling the
    /// distinct-key count.
    pub vary_pruning: bool,
    /// Extra workload submitted once per pass (no duplicates, no pruning
    /// variation), intended to exceed single-device memory so the trace
    /// exercises the exclusive pooled placement path. Pair with
    /// [`suggested_device_bytes`] when sizing the server's devices.
    pub oversized: Option<String>,
}

impl TraceConfig {
    /// The default trace at a given scale: the full suite, 4 clients,
    /// 2 passes × 2 duplicates, pruning varied.
    pub fn suite(scale: Scale) -> Self {
        Self {
            seed: 0x5eed_cafe,
            clients: 4,
            passes: 2,
            duplicates: 2,
            scale,
            workloads: SUITE.iter().map(|w| w.name.to_string()).collect(),
            base: JobOptions::default(),
            vary_pruning: true,
            oversized: None,
        }
    }
}

/// A device-memory size that pushes [`TraceConfig::oversized`] onto the
/// pooled multi-device path while every regular workload of the trace
/// still fits a single device: the midpoint between the largest regular
/// footprint and the oversized footprint. `None` when the trace has no
/// oversized workload.
pub fn suggested_device_bytes(cfg: &TraceConfig) -> Result<Option<usize>, UnknownWorkload> {
    let Some(name) = &cfg.oversized else { return Ok(None) };
    let oversized = cd_core::estimated_device_bytes(&cd_workloads::load(name, cfg.scale)?.graph);
    let mut largest = 0usize;
    for w in &cfg.workloads {
        let fp = cd_core::estimated_device_bytes(&cd_workloads::load(w, cfg.scale)?.graph);
        largest = largest.max(fp);
    }
    Ok(Some(largest.midpoint(oversized).max(largest + 1)))
}

/// One planned submission of the trace.
#[derive(Clone, Debug)]
struct PlannedJob {
    workload: usize,
    pruning: bool,
    priority: Priority,
}

/// What one job of the trace did, recorded at its trace position.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Workload name.
    pub workload: String,
    /// Whether pruning was on.
    pub pruning: bool,
    /// Priority the trace assigned.
    pub priority: Priority,
    /// Server-assigned job id.
    pub job_id: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// Execution-path label (`"cache-hit"`, `"coalesced"`, `"single"`, …);
    /// `"-"` for non-completed jobs.
    pub path: &'static str,
    /// Modularity bit pattern, when completed.
    pub modularity_bits: Option<u64>,
    /// FNV-1a over the result's community labels, when completed.
    pub labels_hash: Option<u64>,
    /// Submission → terminal latency.
    pub latency: Duration,
    /// `QueueFull` rejections absorbed before this job was admitted.
    pub retries: u64,
}

/// Everything a trace replay produced.
#[derive(Debug)]
pub struct TraceReport {
    /// Per-job records, in trace order (index = trace position).
    pub records: Vec<JobRecord>,
    /// Wall time of the replay.
    pub wall: Duration,
    /// Server metrics snapshot taken at the end of the replay.
    pub metrics: ServeMetrics,
    /// Trace positions that never produced a record (must be 0).
    pub lost: usize,
    /// Job ids appearing more than once across records (must be 0).
    pub duplicated: usize,
}

impl TraceReport {
    /// FNV-1a digest over the *semantic* outcome of every trace position:
    /// workload, pruning, status, modularity bits, labels hash. Timing and
    /// execution path are excluded — they legitimately vary run to run —
    /// so two replays of the same seeded trace must produce equal digests.
    pub fn result_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for r in &self.records {
            h.write_bytes(r.workload.as_bytes());
            h.write_u64(r.pruning as u64);
            h.write_u64(r.status as u64);
            h.write_u64(r.modularity_bits.unwrap_or(0));
            h.write_u64(r.labels_hash.unwrap_or(0));
        }
        h.finish()
    }

    /// True when every record sharing a (workload, pruning) key reports
    /// bit-identical modularity and labels — the cache/coalescing
    /// bit-identity guarantee, checked across the whole replay.
    pub fn results_consistent(&self) -> bool {
        let mut seen: HashMap<(&str, bool), (u64, u64)> = HashMap::new();
        for r in &self.records {
            let (Some(m), Some(l)) = (r.modularity_bits, r.labels_hash) else { continue };
            match seen.entry((r.workload.as_str(), r.pruning)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((m, l));
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != (m, l) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Completed records.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.status == JobStatus::Completed).count()
    }

    /// Jobs per second of wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.records.len() as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Workload name behind a planner index (the oversized workload sits one
/// past the regular list).
fn workload_name(cfg: &TraceConfig, idx: usize) -> &str {
    cfg.workloads.get(idx).or(cfg.oversized.as_ref()).expect("planner index in range")
}

/// FNV-1a over a partition's labels.
pub fn labels_fnv(labels: &[u32]) -> u64 {
    let mut h = Fnv1a::new();
    for &l in labels {
        h.write_u64(l as u64);
    }
    h.finish()
}

/// Expands, seeds, and shuffles the trace into its submission order.
/// Deterministic in `cfg` alone.
fn plan(cfg: &TraceConfig) -> Vec<PlannedJob> {
    let mut jobs = Vec::new();
    for pass in 0..cfg.passes {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (pass as u64).wrapping_mul(0x9e37_79b9));
        let mut pass_jobs = Vec::new();
        for (wi, _) in cfg.workloads.iter().enumerate() {
            let variants: &[bool] = if cfg.vary_pruning { &[false, true] } else { &[false] };
            for &pruning in variants {
                for _ in 0..cfg.duplicates.max(1) {
                    pass_jobs.push(PlannedJob {
                        workload: wi,
                        pruning,
                        priority: Priority::Normal,
                    });
                }
            }
        }
        if cfg.oversized.is_some() {
            // One pooled-path job per pass; `build_graphs` appends its graph
            // after the regular workloads.
            pass_jobs.push(PlannedJob {
                workload: cfg.workloads.len(),
                pruning: false,
                priority: Priority::Normal,
            });
        }
        // Fisher–Yates (the vendored rand has no shuffle adaptor).
        for i in (1..pass_jobs.len()).rev() {
            let j = rng.gen_range(0..=i);
            pass_jobs.swap(i, j);
        }
        for job in &mut pass_jobs {
            job.priority = Priority::ALL[rng.gen_range(0..Priority::ALL.len())];
        }
        jobs.extend(pass_jobs);
    }
    jobs
}

/// Builds every workload the trace references, once, shared across jobs.
/// The oversized workload (when configured) lands at the end, where the
/// planner's out-of-range index points.
fn build_graphs(cfg: &TraceConfig) -> Result<Vec<Arc<Csr>>, UnknownWorkload> {
    cfg.workloads
        .iter()
        .chain(cfg.oversized.as_ref())
        .map(|name| cd_workloads::load(name, cfg.scale).map(|w| Arc::new(w.graph)))
        .collect()
}

/// Replays the trace against `server` with `cfg.clients` concurrent
/// closed-loop clients and collects the per-job records.
///
/// `QueueFull` rejections are retried (closed-loop clients back off and
/// resubmit — the job is not lost, and the retry count is recorded);
/// `ShuttingDown` and `TooManyVertices` terminate the client's job with no
/// record, surfacing as `lost`.
pub fn run_trace(server: &Server, cfg: &TraceConfig) -> Result<TraceReport, UnknownWorkload> {
    let planned = plan(cfg);
    let graphs = build_graphs(cfg)?;
    let records: Mutex<Vec<Option<JobRecord>>> = Mutex::new(vec![None; planned.len()]);
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..cfg.clients.max(1) {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::SeqCst);
                let Some(job) = planned.get(idx) else { return };
                let graph = Arc::clone(&graphs[job.workload]);
                let options = cfg.base.with_pruning(job.pruning).with_priority(job.priority);
                let submitted = Instant::now();
                let mut retries = 0u64;
                let id = loop {
                    match server.submit(Arc::clone(&graph), options) {
                        Ok(id) => break id,
                        Err(Rejected::QueueFull { .. }) => {
                            retries += 1;
                            std::thread::yield_now();
                        }
                        Err(_) => return,
                    }
                };
                let outcome = server.await_result(id);
                let (path, modularity_bits, labels_hash) = match &outcome {
                    JobOutcome::Completed { result, path } => (
                        path.label(),
                        Some(result.modularity.to_bits()),
                        Some(labels_fnv(result.partition.as_slice())),
                    ),
                    _ => ("-", None, None),
                };
                let record = JobRecord {
                    workload: workload_name(cfg, job.workload).to_string(),
                    pruning: job.pruning,
                    priority: job.priority,
                    job_id: id.as_u64(),
                    status: outcome.status(),
                    path,
                    modularity_bits,
                    labels_hash,
                    latency: submitted.elapsed(),
                    retries,
                };
                records.lock().unwrap_or_else(|p| p.into_inner())[idx] = Some(record);
            });
        }
    });

    let wall = start.elapsed();
    let slots = records.into_inner().unwrap_or_else(|p| p.into_inner());
    let lost = slots.iter().filter(|r| r.is_none()).count();
    let records: Vec<JobRecord> = slots.into_iter().flatten().collect();
    let mut ids: Vec<u64> = records.iter().map(|r| r.job_id).collect();
    ids.sort_unstable();
    let unique = {
        let mut v = ids.clone();
        v.dedup();
        v.len()
    };
    let duplicated = ids.len() - unique;
    Ok(TraceReport { records, wall, metrics: server.metrics(), lost, duplicated })
}

/// Parameters of one open-loop (Poisson-arrival) load run.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Seed of the arrival process.
    pub seed: u64,
    /// Mean arrival rate λ, jobs per second. Inter-arrival gaps are drawn
    /// from Exp(λ), so arrivals are a Poisson process.
    pub rate_per_sec: f64,
    /// Total arrivals to offer.
    pub jobs: usize,
    /// Deadline attached to every job (the SLO); `None` disables expiry.
    pub deadline: Option<Duration>,
    /// Options every job starts from.
    pub base: JobOptions,
}

/// What one open-loop run did. Accounting invariant: every offered arrival
/// is either rejected at submit or settles in exactly one terminal state —
/// `lost` and `duplicated` must both be 0.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Arrivals offered (submit attempts).
    pub offered: usize,
    /// Arrivals the server admitted (returned a job id).
    pub admitted: usize,
    /// Rejections: bounded queue full.
    pub rejected_queue_full: usize,
    /// Rejections: estimated execution time exceeded the deadline budget.
    pub rejected_slo: usize,
    /// Rejections of any other kind.
    pub rejected_other: usize,
    /// Admitted jobs that completed.
    pub completed: usize,
    /// Admitted jobs that expired (at any checkpoint).
    pub expired: usize,
    /// Admitted jobs that failed.
    pub failed: usize,
    /// Admitted jobs that were cancelled (none are, in this generator).
    pub cancelled: usize,
    /// Submission → completion latency of *completed* jobs only — the
    /// latency of the service actually delivered.
    pub completed_latency: LatencyStats,
    /// Wall time from first arrival to last settlement.
    pub wall: Duration,
    /// Server metrics snapshot at the end of the run.
    pub metrics: ServeMetrics,
    /// Admitted jobs that never settled (must be 0).
    pub lost: usize,
    /// Job ids handed out more than once (must be 0).
    pub duplicated: usize,
}

impl OpenLoopReport {
    /// Completed jobs per second of wall time — throughput of *useful*
    /// work, the number overload is supposed to protect.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.wall.as_secs_f64()
        }
    }

    /// Fraction of offered arrivals that completed.
    pub fn completion_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }
}

/// `count` structurally distinct ring graphs of `base`, `base + 1`, …
/// vertices. Open-loop runs hand one to each arrival so every submission
/// is a distinct content key — otherwise coalescing and the result cache
/// would quietly absorb the offered load and no overload would register.
pub fn distinct_rings(count: usize, base: usize) -> Vec<Arc<Csr>> {
    (0..count)
        .map(|i| {
            let n = base + i;
            let mut b = GraphBuilder::new(n);
            for v in 0..n {
                b.add_edge(v as VertexId, ((v + 1) % n) as VertexId, 1.0);
            }
            Arc::new(b.build())
        })
        .collect()
}

/// Offers `cfg.jobs` Poisson arrivals to `server` at `cfg.rate_per_sec`,
/// cycling through `graphs` (give it at least `cfg.jobs` distinct graphs
/// for a pure overload measurement), and waits for every admitted job to
/// settle.
///
/// Open-loop discipline: the generator never waits for an outcome before
/// the next arrival, and a rejection is recorded, not retried — shedding
/// is the signal this generator exists to measure. The arrival *schedule*
/// is a pure function of the seed; actual submission instants track it as
/// closely as the clock allows and lag only when `submit` itself blocks.
pub fn run_open_loop(server: &Server, cfg: &OpenLoopConfig, graphs: &[Arc<Csr>]) -> OpenLoopReport {
    assert!(!graphs.is_empty(), "an open-loop run needs at least one graph");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let rate = cfg.rate_per_sec.max(1e-3);
    let mut offsets = Vec::with_capacity(cfg.jobs);
    let mut t = 0.0f64;
    for _ in 0..cfg.jobs {
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / rate; // Exp(λ) gap
        offsets.push(Duration::from_secs_f64(t));
    }

    struct Pending {
        id: JobId,
        submitted_at: Instant,
    }
    let pending: Mutex<Vec<Pending>> = Mutex::new(Vec::new());
    let submitting = AtomicBool::new(true);
    let settled: Mutex<Vec<(JobId, JobStatus, f64)>> = Mutex::new(Vec::new());

    let mut admitted = 0usize;
    let mut rejected_queue_full = 0usize;
    let mut rejected_slo = 0usize;
    let mut rejected_other = 0usize;
    let start = Instant::now();

    std::thread::scope(|scope| {
        // Collector: polls outstanding jobs so completion latency is
        // recorded near the settlement instant regardless of order.
        scope.spawn(|| loop {
            let mut outstanding = {
                let mut p = pending.lock().unwrap_or_else(|p| p.into_inner());
                std::mem::take(&mut *p)
            };
            let mut still = Vec::with_capacity(outstanding.len());
            for job in outstanding.drain(..) {
                match server.try_result(job.id) {
                    Some(outcome) => {
                        let latency_ms = job.submitted_at.elapsed().as_secs_f64() * 1e3;
                        settled.lock().unwrap_or_else(|p| p.into_inner()).push((
                            job.id,
                            outcome.status(),
                            latency_ms,
                        ));
                    }
                    None => still.push(job),
                }
            }
            let drained = still.is_empty();
            pending.lock().unwrap_or_else(|p| p.into_inner()).append(&mut still);
            if drained && !submitting.load(Ordering::SeqCst) {
                // One more look: the submitter may have pushed between the
                // take above and the flag read.
                if pending.lock().unwrap_or_else(|p| p.into_inner()).is_empty() {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        });

        // Submitter (this thread): follow the arrival schedule.
        for (i, offset) in offsets.iter().enumerate() {
            let elapsed = start.elapsed();
            if *offset > elapsed {
                std::thread::sleep(*offset - elapsed);
            }
            let graph = Arc::clone(&graphs[i % graphs.len()]);
            let mut options = cfg.base;
            if let Some(d) = cfg.deadline {
                options = options.with_deadline(d);
            }
            match server.submit(graph, options) {
                Ok(id) => {
                    admitted += 1;
                    pending
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push(Pending { id, submitted_at: Instant::now() });
                }
                Err(Rejected::QueueFull { .. }) => rejected_queue_full += 1,
                Err(Rejected::WontMeetDeadline { .. }) => rejected_slo += 1,
                Err(_) => rejected_other += 1,
            }
        }
        submitting.store(false, Ordering::SeqCst);
    });

    let wall = start.elapsed();
    let settled = settled.into_inner().unwrap_or_else(|p| p.into_inner());
    let mut completed = 0usize;
    let mut expired = 0usize;
    let mut failed = 0usize;
    let mut cancelled = 0usize;
    let mut latencies = Vec::new();
    for &(_, status, latency_ms) in &settled {
        match status {
            JobStatus::Completed => {
                completed += 1;
                latencies.push(latency_ms);
            }
            JobStatus::Expired => expired += 1,
            JobStatus::Failed => failed += 1,
            JobStatus::Cancelled => cancelled += 1,
            JobStatus::Queued | JobStatus::Running => unreachable!("settled jobs are terminal"),
        }
    }
    let mut ids: Vec<u64> = settled.iter().map(|(id, _, _)| id.as_u64()).collect();
    ids.sort_unstable();
    let unique = {
        let mut v = ids.clone();
        v.dedup();
        v.len()
    };
    OpenLoopReport {
        offered: cfg.jobs,
        admitted,
        rejected_queue_full,
        rejected_slo,
        rejected_other,
        completed,
        expired,
        failed,
        cancelled,
        completed_latency: LatencyStats::from_samples(&latencies),
        wall,
        metrics: server.metrics(),
        lost: admitted - settled.len(),
        duplicated: ids.len() - unique,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TraceConfig {
        TraceConfig {
            workloads: vec!["road-usa".into(), "com-dblp".into()],
            ..TraceConfig::suite(Scale::Tiny)
        }
    }

    #[test]
    fn plan_is_deterministic_and_complete() {
        let cfg = tiny_cfg();
        let a = plan(&cfg);
        let b = plan(&cfg);
        // 2 workloads × 2 pruning × 2 duplicates × 2 passes.
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.workload, x.pruning, x.priority), (y.workload, y.pruning, y.priority));
        }
        // A different seed reorders.
        let other = plan(&TraceConfig { seed: 99, ..cfg });
        assert!(a
            .iter()
            .zip(&other)
            .any(|(x, y)| (x.workload, x.pruning) != (y.workload, y.pruning)));
    }

    #[test]
    fn unknown_workload_is_reported() {
        let cfg = TraceConfig {
            workloads: vec!["no-such-graph".into()],
            ..TraceConfig::suite(Scale::Tiny)
        };
        assert!(build_graphs(&cfg).is_err());
    }

    #[test]
    fn oversized_workload_is_planned_once_per_pass_and_built_last() {
        let cfg = TraceConfig { oversized: Some("hugetrace".into()), ..tiny_cfg() };
        let jobs = plan(&cfg);
        // 16 regular + 1 oversized per pass × 2 passes.
        assert_eq!(jobs.len(), 18);
        let oversized_idx = cfg.workloads.len();
        assert_eq!(jobs.iter().filter(|j| j.workload == oversized_idx).count(), 2);
        let graphs = build_graphs(&cfg).unwrap();
        assert_eq!(graphs.len(), 3);
        assert_eq!(workload_name(&cfg, oversized_idx), "hugetrace");
        // The suggested device size sits strictly between the largest
        // regular footprint and the oversized footprint.
        let bytes = suggested_device_bytes(&cfg).unwrap().unwrap();
        let oversized_fp = cd_core::estimated_device_bytes(&graphs[2]);
        let largest_regular =
            graphs[..2].iter().map(|g| cd_core::estimated_device_bytes(g)).max().unwrap();
        assert!(largest_regular < bytes && bytes < oversized_fp);
    }

    #[test]
    fn poisson_schedule_is_seeded_and_open_loop_counts_settle() {
        // Two identical configs produce the identical arrival schedule
        // (exercised indirectly: the run is deterministic in job *content*,
        // and the accounting invariant must hold).
        let graphs = distinct_rings(8, 48);
        assert_eq!(graphs.len(), 8);
        // Distinct content keys: consecutive rings differ structurally.
        let k0 = crate::hash::structural_hash(&graphs[0]);
        let k1 = crate::hash::structural_hash(&graphs[1]);
        assert_ne!(k0, k1);

        let mut server = Server::new(crate::server::ServerConfig {
            workers: 2,
            cache_bytes: 0,
            ..crate::server::ServerConfig::test_manual()
        });
        let cfg = OpenLoopConfig {
            seed: 11,
            rate_per_sec: 500.0,
            jobs: 8,
            deadline: None,
            base: JobOptions::default(),
        };
        let report = run_open_loop(&server, &cfg, &graphs);
        server.shutdown();
        assert_eq!(report.offered, 8);
        assert_eq!((report.lost, report.duplicated), (0, 0));
        // No deadline and a bounded queue of 16: everything completes.
        assert_eq!(report.completed, 8);
        assert_eq!(report.completed_latency.count, 8);
        assert!(report.goodput_per_sec() > 0.0);
    }
}
