//! The service itself: submission, admission control, the worker loop, and
//! job lifecycle management.
//!
//! ## Concurrency model
//!
//! One mutex guards all server state (queue, device pool, cache, job table);
//! two condition variables signal "work may be runnable" (`work_cv`: new
//! submission, placement capacity released) and "a job reached a terminal
//! state" (`done_cv`). Kernel execution happens *outside* the lock — the
//! lock scopes are bookkeeping only, so N workers genuinely overlap their
//! simulated runs.
//!
//! ## Determinism
//!
//! A job's result is a pure function of its (graph, options) content:
//! every placement builds a *fresh* `Device` with the job's profile, so no
//! simulator state leaks between jobs, and the kernels themselves are
//! deterministic. Scheduling order decides only *when* and *where* a job
//! runs — never what it computes. Coalescing and the content-addressed
//! cache then guarantee each distinct content key is computed at most once,
//! with every requester handed the same `Arc` — reuse is bit-identical by
//! construction.
//!
//! ## Cancellation and deadlines
//!
//! Both are cooperative, observed at checkpoints: the dequeue checkpoint
//! (between queue and device) and every stage checkpoint of the gated
//! driver ([`cd_core::louvain_gpu_gated`]). A run is never interrupted
//! mid-stage — aborts land on the same host-resident stage boundaries the
//! retry machinery uses, so no partial device state can escape. The pooled
//! multi-device path has no stage gate; pooled jobs observe cancellation
//! only at the dequeue checkpoint.

use crate::cache::ResultCache;
use crate::hash::{chained_graph_hash, delta_hash, options_hash, CacheKey};
use crate::job::{
    DeltaBase, ExecPath, JobId, JobOptions, JobOutcome, JobStatus, Rejected, ServeResult,
};
use crate::metrics::{LatencyStats, MetricsState, ServeMetrics};
use crate::queue::SubmissionQueue;
use crate::scheduler::{BreakerConfig, DevicePool, Placement};
use cd_core::{
    detect_communities_gated, estimated_device_bytes, louvain_warm_start_gated, Algorithm,
    GpuLouvainError, StageAbort, ThresholdSchedule,
};
use cd_gpusim::{Device, DeviceConfig};
use cd_graph::{apply_delta, Csr, DeltaBatch};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bound of the submission queue ([`Rejected::QueueFull`] beyond it).
    pub queue_capacity: usize,
    /// Worker threads executing jobs. `0` selects *manual mode*: no threads
    /// are spawned and the caller drives execution with
    /// [`Server::process_one`] — the fully deterministic single-threaded
    /// mode the lifecycle tests use.
    pub workers: usize,
    /// Device slots in the pool.
    pub num_devices: usize,
    /// Device model of every slot; each job's device is built fresh from
    /// this with the job's own profile.
    pub device: DeviceConfig,
    /// Byte budget of the content-addressed result cache (0 disables it).
    pub cache_bytes: usize,
    /// Whether the pooled multi-device path may degrade to the sequential
    /// host baseline when no healthy device can take a block.
    pub sequential_fallback: bool,
    /// Per-device circuit-breaker tuning (failure threshold, quarantine
    /// backoff).
    pub breaker: BreakerConfig,
    /// Extra placements a job may consume after device-attributable
    /// failures before it is failed outright. `0` disables failover.
    pub placement_retries: usize,
    /// Period of the background queue sweep that expires deadline-passed
    /// jobs while they wait (workers mode only; in manual mode call
    /// [`Server::sweep_expired`] explicitly).
    pub sweep_interval: Duration,
    /// Reject submissions whose estimated execution time already exceeds
    /// their deadline budget ([`Rejected::WontMeetDeadline`]), and shed
    /// queued jobs at the dequeue checkpoint on the same grounds.
    pub shed_unattainable: bool,
    /// Path of the result-cache snapshot. When set, the server restores it
    /// at startup (cold-starting cleanly if the file is missing or
    /// corrupt); persist the current cache with
    /// [`Server::snapshot_cache_to`].
    pub cache_snapshot: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            workers: 4,
            num_devices: 4,
            device: DeviceConfig::tesla_k40m(),
            cache_bytes: 64 << 20,
            sequential_fallback: true,
            breaker: BreakerConfig::default(),
            placement_retries: 2,
            sweep_interval: Duration::from_millis(2),
            shed_unattainable: true,
            cache_snapshot: None,
        }
    }
}

impl ServerConfig {
    /// A small deterministic configuration for tests: manual mode, two
    /// K40m-model devices, a small queue. (The gpusim `test_tiny` model is
    /// unusable here — its 1 KiB shared memory rejects the real kernels.)
    pub fn test_manual() -> Self {
        Self {
            queue_capacity: 16,
            workers: 0,
            num_devices: 2,
            device: DeviceConfig::tesla_k40m(),
            cache_bytes: 1 << 20,
            ..Self::default()
        }
    }
}

/// Warm-start material a delta job carries: the base's partition to seed
/// labels from and the vertices the delta touched (the re-evaluation
/// frontier). Both shared — the seed is the base's cached `ServeResult`.
#[derive(Clone)]
struct WarmContext {
    seed: Arc<ServeResult>,
    touched: Arc<Vec<u32>>,
}

struct JobState {
    graph: Arc<Csr>,
    options: JobOptions,
    key: CacheKey,
    footprint: usize,
    status: JobStatus,
    outcome: Option<JobOutcome>,
    cancel: Arc<AtomicBool>,
    submitted_at: Instant,
    deadline_at: Option<Instant>,
    /// Placements that failed with a device-attributable error.
    attempts: usize,
    /// Slot of the most recent such failure, steered around on the retry.
    avoid: Option<usize>,
    /// Warm-start seed of a delta job whose base result was resident.
    warm: Option<WarmContext>,
    /// Second cache key a delta job's result is inserted under: the
    /// structural hash of its patched graph, promoting the chain entry to
    /// a plain base that cold submissions of the same graph can hit.
    promote_key: Option<CacheKey>,
}

/// Everything a submission resolved before admission: the (possibly
/// patched) graph, its content key, and the optional warm-start material.
struct ProtoJob {
    graph: Arc<Csr>,
    options: JobOptions,
    key: CacheKey,
    footprint: usize,
    now: Instant,
    deadline_at: Option<Instant>,
    warm: Option<WarmContext>,
    promote_key: Option<CacheKey>,
}

/// The coalescing record of one in-flight content key: the job that will
/// compute it and everyone waiting to share the result.
struct InFlight {
    leader: JobId,
    followers: Vec<JobId>,
}

struct Inner {
    jobs: HashMap<JobId, JobState>,
    queue: SubmissionQueue,
    pool: DevicePool,
    cache: ResultCache,
    inflight: HashMap<CacheKey, InFlight>,
    /// Graphs a delta can reference as its base, by every hash they answer
    /// to: the structural hash of each submitted graph, and both the
    /// chained and structural hashes of each delta job's patched graph.
    /// Retained for the server lifetime, like the job table.
    bases: HashMap<u64, Arc<Csr>>,
    metrics: MetricsState,
    next_id: u64,
    shutting_down: bool,
    sequential_fallback: bool,
    shed_unattainable: bool,
    placement_retries: usize,
}

impl Inner {
    fn alloc_id(&mut self) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Moves a job to a terminal state and updates the lifecycle counters.
    /// The caller notifies `done_cv`.
    fn finalize(&mut self, id: JobId, outcome: JobOutcome) {
        let job = self.jobs.get_mut(&id).expect("finalizing a known job");
        debug_assert!(job.outcome.is_none(), "a job is finalized exactly once");
        let status = outcome.status();
        job.status = status;
        job.outcome = Some(outcome);
        let total = job.submitted_at.elapsed();
        match status {
            JobStatus::Completed => self.metrics.completed += 1,
            JobStatus::Failed => self.metrics.failed += 1,
            JobStatus::Cancelled => self.metrics.cancelled += 1,
            JobStatus::Expired => self.metrics.expired += 1,
            JobStatus::Queued | JobStatus::Running => unreachable!("terminal outcomes only"),
        }
        self.metrics.record_total(total);
    }

    /// After a leader terminated without a result, promotes the first live
    /// follower of `key` to be the new leader and re-enqueues it. Removes
    /// the in-flight entry when no live follower remains.
    fn promote_follower(&mut self, key: CacheKey) {
        let Some(mut inf) = self.inflight.remove(&key) else { return };
        while !inf.followers.is_empty() {
            let candidate = inf.followers.remove(0);
            let Some(job) = self.jobs.get(&candidate) else { continue };
            if job.outcome.is_some() {
                continue;
            }
            let priority = job.options.priority;
            inf.leader = candidate;
            // Promotion bypasses admission: the follower was admitted at its
            // own submit and has been waiting ever since.
            self.queue.push_promoted(candidate, priority);
            self.inflight.insert(key, inf);
            return;
        }
    }
}

struct Shared {
    state: Mutex<Inner>,
    work_cv: Condvar,
    done_cv: Condvar,
    sweep_cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// What the dispatch step decided under the lock.
enum Action {
    /// Run this job on this reservation.
    Run(JobId, Placement),
    /// Nothing runnable right now (empty queue, or the head must wait for
    /// placement capacity).
    Wait,
}

/// Expires every queued job whose deadline has passed — leaders, queued
/// followers, everything the periodic sweep can reach — settles coalescing
/// state, and purges stale heap entries so expired work stops occupying
/// queue room. Returns the number of jobs expired. The caller notifies
/// `done_cv` (and `work_cv`, if the queue is non-empty) after unlocking.
fn sweep_expired_locked(inner: &mut Inner, now: Instant) -> usize {
    // Collect first: finalize needs the job table mutably.
    let doomed: Vec<(JobId, CacheKey)> = inner
        .jobs
        .iter()
        .filter(|(_, j)| {
            j.outcome.is_none()
                && j.status == JobStatus::Queued
                && j.deadline_at.is_some_and(|d| now >= d)
        })
        .map(|(id, j)| (*id, j.key))
        .collect();
    for &(id, key) in &doomed {
        if inner.jobs.get(&id).is_some_and(|j| j.outcome.is_some()) {
            continue; // settled earlier in this sweep (e.g. skipped as a promoted follower)
        }
        let is_leader = inner.inflight.get(&key).map(|i| i.leader) == Some(id);
        inner.finalize(id, JobOutcome::Expired { stage: None });
        inner.metrics.expired_sweep += 1;
        if is_leader {
            inner.promote_follower(key);
        } else if let Some(inf) = inner.inflight.get_mut(&key) {
            inf.followers.retain(|f| *f != id);
        }
    }
    // Drop heap entries of finalized jobs so they free queue room now
    // instead of lingering until the dequeue checkpoint skips them.
    let Inner { jobs, queue, .. } = inner;
    queue.retain_live(|id| jobs.get(&id).is_some_and(|j| j.outcome.is_none()));
    doomed.len()
}

/// The periodic queue sweep (workers mode): expires deadline-passed jobs
/// while they wait, and doubles as the waker that lets parked workers
/// re-test placement once a quarantine backoff has elapsed.
fn sweeper_loop(shared: Arc<Shared>, interval: Duration) {
    let mut inner = shared.lock();
    loop {
        if inner.shutting_down {
            return;
        }
        let (guard, _) =
            shared.sweep_cv.wait_timeout(inner, interval).unwrap_or_else(PoisonError::into_inner);
        inner = guard;
        if inner.shutting_down {
            return;
        }
        let expired = sweep_expired_locked(&mut inner, Instant::now());
        if expired > 0 {
            shared.done_cv.notify_all();
        }
        if !inner.queue.is_empty() {
            shared.work_cv.notify_all();
        }
    }
}

/// Pops until a runnable job is found, applying the dequeue checkpoint
/// (stale-entry skip, cancellation, deadline, predictive shed) to
/// everything popped. On placement failure the head is pushed back — same
/// id, so its position within its priority class is preserved — and the
/// caller waits.
fn next_action(shared: &Shared, inner: &mut Inner) -> Action {
    loop {
        let Some(id) = inner.queue.pop() else { return Action::Wait };
        let job = inner.jobs.get(&id).expect("queued job has state");
        // Stale heap entry: the job was finalized while queued (cancel()).
        if job.outcome.is_some() {
            continue;
        }
        let key = job.key;
        let footprint = job.footprint;
        let priority = job.options.priority;
        let deadline_at = job.deadline_at;
        let avoid = job.avoid;
        let cancelled = job.cancel.load(Ordering::SeqCst);
        let is_leader = inner.inflight.get(&key).map(|i| i.leader) == Some(id);
        if cancelled {
            inner.finalize(id, JobOutcome::Cancelled { stage: None });
            if is_leader {
                inner.promote_follower(key);
            }
            shared.done_cv.notify_all();
            continue;
        }
        let now = Instant::now();
        if deadline_at.is_some_and(|d| now >= d) {
            inner.metrics.expired_dequeue += 1;
            inner.finalize(id, JobOutcome::Expired { stage: None });
            if is_leader {
                inner.promote_follower(key);
            }
            shared.done_cv.notify_all();
            continue;
        }
        // Predictive shed: the deadline hasn't passed, but the estimated
        // execution time already exceeds what's left of the budget — drop
        // the job now rather than burn device time on a result nobody will
        // wait for.
        if inner.shed_unattainable {
            if let (Some(d), Some(est)) = (deadline_at, inner.metrics.estimate_exec(footprint)) {
                if est > d.saturating_duration_since(now) {
                    inner.metrics.expired_dequeue += 1;
                    inner.metrics.shed_predicted += 1;
                    inner.finalize(id, JobOutcome::Expired { stage: None });
                    if is_leader {
                        inner.promote_follower(key);
                    }
                    shared.done_cv.notify_all();
                    continue;
                }
            }
        }
        match inner.pool.try_place_at(footprint, avoid, now) {
            Some(placement) => return Action::Run(id, placement),
            None => {
                inner.queue.push_promoted(id, priority);
                return Action::Wait;
            }
        }
    }
}

/// Runs a placed job to completion: releases the lock, executes, re-locks,
/// and settles the leader plus every coalesced follower.
fn execute(shared: &Shared, mut inner: MutexGuard<'_, Inner>, id: JobId, placement: Placement) {
    let (graph, options, key, footprint, cancel, deadline_at, attempts, warm, promote_key) = {
        let job = inner.jobs.get_mut(&id).expect("placed job has state");
        job.status = JobStatus::Running;
        (
            Arc::clone(&job.graph),
            job.options,
            job.key,
            job.footprint,
            Arc::clone(&job.cancel),
            job.deadline_at,
            job.attempts,
            job.warm.clone(),
            job.promote_key,
        )
    };
    let queue_wait = inner.jobs[&id].submitted_at.elapsed();
    inner.metrics.record_queue_wait(queue_wait);
    inner.metrics.in_flight += 1;
    inner.metrics.max_in_flight = inner.metrics.max_in_flight.max(inner.metrics.in_flight);
    let device_cfg = inner.pool.device_config().clone();
    let num_devices = inner.pool.num_devices();
    let sequential_fallback = inner.sequential_fallback;
    drop(inner);

    let exec_start = Instant::now();
    // Set when the single-device path actually ran the warm-start driver
    // (pooled runs ignore warm context — the multi-device path has no
    // seeded entry point).
    let mut ran_warm = false;
    // (exchange rounds, ghost bytes) of a sharded pooled run, for the
    // service counters.
    let mut sharded_telemetry: Option<(u64, u64)> = None;
    let raw: Result<(Arc<ServeResult>, ExecPath), GpuLouvainError> = match placement {
        Placement::Single(slot) => {
            let mut slot_cfg = device_cfg.with_profile(options.profile);
            // Per-job fault injection targets one pool slot: the job carries
            // the plan, and only a placement on that slot arms it.
            if let Some(f) = options.fault.filter(|f| f.device == slot) {
                slot_cfg = slot_cfg.with_fault_plan(f.plan);
            }
            Device::try_new(slot_cfg).map_err(GpuLouvainError::Config).and_then(|dev| {
                let cfg = &options.config;
                let schedule = ThresholdSchedule::two_level(
                    cfg.threshold_bin,
                    cfg.threshold_final,
                    cfg.size_limit,
                );
                let mut gate = |_cp: &cd_core::StageCheckpoint| {
                    if cancel.load(Ordering::SeqCst) {
                        return Err(StageAbort::Cancelled);
                    }
                    if deadline_at.is_some_and(|d| Instant::now() >= d) {
                        return Err(StageAbort::DeadlineExceeded);
                    }
                    Ok(())
                };
                // The warm-start driver is Louvain-specific (it seeds the
                // modularity descent); `submit_delta` only attaches warm
                // context to Louvain jobs, and this guard keeps the
                // invariant local — every other algorithm runs its own
                // cold driver through the portfolio dispatch.
                let run = match &warm {
                    Some(w) if options.algorithm == Algorithm::Louvain => {
                        ran_warm = true;
                        louvain_warm_start_gated(
                            &dev,
                            &graph,
                            cfg,
                            &schedule,
                            &w.seed.partition,
                            &w.touched,
                            &mut gate,
                        )
                    }
                    _ => detect_communities_gated(
                        &dev,
                        &graph,
                        cfg,
                        &schedule,
                        options.algorithm,
                        &mut gate,
                    ),
                };
                run.map(|r| {
                    let result = Arc::new(ServeResult {
                        partition: r.partition,
                        modularity: r.modularity,
                        stages: r.stages.len(),
                    });
                    (result, ExecPath::SingleDevice { device: slot })
                })
            })
        }
        Placement::Pooled if options.algorithm != Algorithm::Louvain => {
            // The coarse-grained multi-device path only implements the
            // Louvain descent. A too-large graph under another algorithm
            // fails with a typed, content-attributable error (an identical
            // re-run would fail identically, so followers share it) rather
            // than silently computing Louvain under the wrong cache key.
            Err(GpuLouvainError::UnsupportedAlgorithm {
                algorithm: options.algorithm,
                path: "multi-device pool",
            })
        }
        Placement::Pooled => {
            // Oversized graphs run the sharded out-of-core engine: one
            // shard per pool device, ghost copies of cut-edge neighbors,
            // and halo label exchange between supersteps (`cd_dist`) —
            // with the same retry/failover/sequential-degradation ladder
            // as the single-device path.
            let cfg = cd_dist::DistConfig {
                gpu: options.config,
                device: device_cfg.with_profile(options.profile),
                sequential_fallback,
                ..cd_dist::DistConfig::k40m(num_devices)
            };
            cd_dist::louvain_sharded(&graph, &cfg).map(|r| {
                sharded_telemetry =
                    Some((r.telemetry.exchange_rounds as u64, r.telemetry.ghost_bytes as u64));
                let degraded = r.telemetry.degraded;
                let result = Arc::new(ServeResult {
                    partition: r.partition,
                    modularity: r.modularity,
                    stages: 0,
                });
                (result, ExecPath::DevicePool { devices: num_devices, degraded })
            })
        }
    };
    let exec_time = exec_start.elapsed();

    let mut inner = shared.lock();
    inner.pool.release(placement, footprint);
    inner.metrics.in_flight -= 1;
    // Only single-device runs feed the per-byte estimator: pooled runs have
    // a different cost shape.
    let estimator_footprint = match placement {
        Placement::Single(_) => Some(footprint),
        Placement::Pooled => None,
    };
    inner.metrics.record_exec(exec_time, estimator_footprint);
    match raw {
        Ok((result, path)) => {
            let path = match path {
                ExecPath::SingleDevice { device } => {
                    inner.pool.note_success(device);
                    if attempts > 0 {
                        inner.metrics.failed_over_jobs += 1;
                        ExecPath::FailedOver { device, attempts: attempts + 1 }
                    } else {
                        path
                    }
                }
                ExecPath::DevicePool { degraded, .. } => {
                    inner.metrics.pooled_jobs += 1;
                    inner.metrics.sharded_jobs += 1;
                    if let Some((rounds, bytes)) = sharded_telemetry {
                        inner.metrics.exchange_rounds += rounds;
                        inner.metrics.ghost_bytes += bytes;
                    }
                    if degraded {
                        inner.metrics.degraded_jobs += 1;
                    }
                    path
                }
                other => other,
            };
            if ran_warm {
                inner.metrics.warm_started_jobs += 1;
            }
            inner.cache.insert(key, Arc::clone(&result));
            // A delta job's result is also the result of its patched graph
            // as a plain base: insert it under the structural key too (the
            // shared payload is byte-counted once — see `ResultCache`).
            if let Some(pk) = promote_key.filter(|pk| *pk != key) {
                inner.cache.insert(pk, Arc::clone(&result));
            }
            inner.finalize(id, JobOutcome::Completed { result: Arc::clone(&result), path });
            let followers = inner.inflight.remove(&key).map(|i| i.followers).unwrap_or_default();
            for f in followers {
                let Some(job) = inner.jobs.get(&f) else { continue };
                if job.outcome.is_some() {
                    continue;
                }
                let outcome = if job.cancel.load(Ordering::SeqCst) {
                    JobOutcome::Cancelled { stage: None }
                } else if job.deadline_at.is_some_and(|d| Instant::now() >= d) {
                    JobOutcome::Expired { stage: None }
                } else {
                    JobOutcome::Completed { result: Arc::clone(&result), path: ExecPath::Coalesced }
                };
                if matches!(outcome, JobOutcome::Expired { .. }) {
                    inner.metrics.expired_settle += 1;
                }
                inner.finalize(f, outcome);
            }
        }
        Err(GpuLouvainError::Aborted { stage, reason }) => {
            let outcome = match reason {
                StageAbort::Cancelled => JobOutcome::Cancelled { stage: Some(stage) },
                StageAbort::DeadlineExceeded => {
                    inner.metrics.expired_stage += 1;
                    JobOutcome::Expired { stage: Some(stage) }
                }
            };
            inner.finalize(id, outcome);
            // Followers still want the result; hand leadership on.
            inner.promote_follower(key);
        }
        Err(e) => {
            let now = Instant::now();
            let failed_slot = match placement {
                Placement::Single(s) => Some(s),
                Placement::Pooled => None,
            };
            // Feed the breaker: transient faults and mid-run stage failures
            // indict the device; config/OOM errors indict the job.
            let device_attributable = e.is_device_attributable();
            if device_attributable {
                if let Some(slot) = failed_slot {
                    inner.pool.note_failure(slot, now);
                }
            }
            let retry_slot =
                failed_slot.filter(|_| device_attributable && attempts < inner.placement_retries);
            if let Some(slot) = retry_slot {
                // The fault was the device's, not the job's: re-queue onto a
                // different slot — unless cancellation or the deadline
                // caught up with the job across the failed placement.
                if cancel.load(Ordering::SeqCst) {
                    inner.finalize(id, JobOutcome::Cancelled { stage: None });
                    inner.promote_follower(key);
                } else if deadline_at.is_some_and(|d| now >= d) {
                    inner.metrics.expired_settle += 1;
                    inner.finalize(id, JobOutcome::Expired { stage: None });
                    inner.promote_follower(key);
                } else {
                    let job = inner.jobs.get_mut(&id).expect("retried job has state");
                    job.attempts += 1;
                    job.avoid = Some(slot);
                    job.status = JobStatus::Queued;
                    let priority = job.options.priority;
                    inner.queue.push_promoted(id, priority);
                    inner.metrics.retried_jobs += 1;
                }
            } else {
                // Out of retries, or the error indicts the (graph, options)
                // content itself — an identical re-run would fail
                // identically, so followers share the error.
                let err = Arc::new(e);
                inner.finalize(id, JobOutcome::Failed(Arc::clone(&err)));
                let followers =
                    inner.inflight.remove(&key).map(|i| i.followers).unwrap_or_default();
                for f in followers {
                    let live = inner.jobs.get(&f).is_some_and(|j| j.outcome.is_none());
                    if live {
                        inner.finalize(f, JobOutcome::Failed(Arc::clone(&err)));
                    }
                }
            }
        }
    }
    drop(inner);
    shared.done_cv.notify_all();
    shared.work_cv.notify_all();
}

fn worker_loop(shared: Arc<Shared>) {
    let mut inner = shared.lock();
    loop {
        if inner.shutting_down && inner.queue.is_empty() {
            return;
        }
        match next_action(&shared, &mut inner) {
            Action::Run(id, placement) => {
                execute(&shared, inner, id, placement);
                inner = shared.lock();
            }
            Action::Wait => {
                if inner.shutting_down && inner.queue.is_empty() {
                    return;
                }
                inner = shared.work_cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// The community-detection service. See the module docs for the concurrency
/// and determinism model.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl Server {
    /// Builds a server (and spawns its worker threads, unless
    /// `config.workers == 0`).
    ///
    /// When [`ServerConfig::cache_snapshot`] is set, the result cache is
    /// warm-started from that file. A missing file is a normal first boot;
    /// an unreadable or corrupt snapshot is logged, counted
    /// (`cache_restore_failures`), and discarded for a clean cold start —
    /// never a panic.
    pub fn new(config: ServerConfig) -> Self {
        let mut cache = ResultCache::new(config.cache_bytes);
        let mut metrics = MetricsState::default();
        if let Some(path) = &config.cache_snapshot {
            match std::fs::read(path) {
                Ok(bytes) => match cache.restore(&bytes) {
                    Ok(n) => metrics.cache_restored_entries = n as u64,
                    Err(e) => {
                        eprintln!("cd-serve: discarding cache snapshot {}: {e}", path.display());
                        metrics.cache_restore_failures = 1;
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    eprintln!("cd-serve: cannot read cache snapshot {}: {e}", path.display());
                    metrics.cache_restore_failures = 1;
                }
            }
        }
        let inner = Inner {
            jobs: HashMap::new(),
            queue: SubmissionQueue::new(config.queue_capacity),
            pool: DevicePool::new(config.num_devices, config.device.clone())
                .with_breaker(config.breaker),
            cache,
            inflight: HashMap::new(),
            bases: HashMap::new(),
            metrics,
            next_id: 0,
            shutting_down: false,
            sequential_fallback: config.sequential_fallback,
            shed_unattainable: config.shed_unattainable,
            placement_retries: config.placement_retries,
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(inner),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            sweep_cv: Condvar::new(),
        });
        let workers: Vec<_> = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cd-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        // Manual mode gets no sweeper either: tests drive expiry explicitly
        // with `sweep_expired`.
        let sweeper = (config.workers > 0).then(|| {
            let shared = Arc::clone(&shared);
            let interval = config.sweep_interval;
            std::thread::Builder::new()
                .name("cd-serve-sweeper".into())
                .spawn(move || sweeper_loop(shared, interval))
                .expect("spawning the sweeper thread")
        });
        Self { shared, workers, sweeper }
    }

    /// Submits a job. On success the job is owned by the server until it
    /// reaches a terminal state observable via [`Self::await_result`].
    ///
    /// The fast paths resolve synchronously: a content-identical cached
    /// result completes the job immediately ([`ExecPath::CacheHit`]); an
    /// identical in-flight job absorbs the submission as a follower
    /// ([`ExecPath::Coalesced`] — exempt from the queue bound, since it
    /// consumes no queue slot and no device time).
    pub fn submit(&self, graph: Arc<Csr>, options: JobOptions) -> Result<JobId, Rejected> {
        // Hash outside the lock: content addressing is O(graph) work.
        let key = CacheKey::compute(&graph, &options);
        let footprint = estimated_device_bytes(&graph);
        let now = Instant::now();
        let deadline_at = options.deadline.map(|d| now + d);

        let mut inner = self.shared.lock();
        if inner.shutting_down {
            inner.metrics.rejected += 1;
            return Err(Rejected::ShuttingDown);
        }
        if graph.num_vertices() >= u32::MAX as usize {
            inner.metrics.rejected += 1;
            return Err(Rejected::TooManyVertices(graph.num_vertices()));
        }
        self.admit(
            inner,
            ProtoJob {
                graph,
                options,
                key,
                footprint,
                now,
                deadline_at,
                warm: None,
                promote_key: None,
            },
        )
    }

    /// Submits an *incremental* job: the base graph — named by a prior job
    /// or a registered graph hash — with `batch` applied.
    ///
    /// The job's content key chains the base's graph hash with the batch
    /// hash ([`crate::chained_graph_hash`]), so a resubmitted delta chain
    /// folds to the same keys and warm-hits the cache link by link with
    /// zero recompute. Every fast path of [`Self::submit`] (coalescing,
    /// cache hits) applies to the chained key too, and the completed result
    /// is additionally inserted under the structural hash of the patched
    /// graph — promoting it to a plain base that a cold submission of the
    /// same graph hits directly.
    ///
    /// When the base's own result (same semantic options) is resident, the
    /// run executes through the warm-start driver
    /// ([`cd_core::louvain_warm_start_gated`]): labels seeded from the base
    /// partition, re-evaluation limited to the touched-vertex frontier.
    /// Otherwise the patched graph runs cold — same result, no speedup.
    /// Warm starting is specific to [`cd_core::Algorithm::Louvain`]; delta
    /// jobs under any other portfolio algorithm always run cold, and the
    /// algorithm-qualified cache keys guarantee a seed can never cross
    /// algorithms.
    pub fn submit_delta(
        &self,
        base: DeltaBase,
        batch: &DeltaBatch,
        options: JobOptions,
    ) -> Result<JobId, Rejected> {
        // Resolve the base under the lock; patch outside it — applying a
        // delta is O(graph) work that must not serialize the service.
        let (base_hash, base_graph, seed) = {
            let mut inner = self.shared.lock();
            if inner.shutting_down {
                inner.metrics.rejected += 1;
                return Err(Rejected::ShuttingDown);
            }
            let (base_hash, base_graph) = match base {
                DeltaBase::Job(id) => match inner.jobs.get(&id) {
                    Some(j) => (j.key.graph, Arc::clone(&j.graph)),
                    None => {
                        inner.metrics.rejected += 1;
                        return Err(Rejected::UnknownBase { base: id.as_u64() });
                    }
                },
                DeltaBase::Graph(h) => match inner.bases.get(&h) {
                    Some(g) => (h, Arc::clone(g)),
                    None => {
                        inner.metrics.rejected += 1;
                        return Err(Rejected::UnknownBase { base: h });
                    }
                },
            };
            // Warm seed: the base's result under the same semantic options
            // (the key carries the algorithm, so a Louvain job can only be
            // seeded by a Louvain partition). A peek, not a lookup —
            // internal resolution must not skew the client-facing hit/miss
            // counters. Only Louvain can consume a seed at all: the
            // warm-start driver is the seeded modularity descent, and the
            // other portfolio members run cold (same result, no speedup).
            let seed = if options.algorithm == Algorithm::Louvain {
                let base_key = CacheKey { graph: base_hash, options: options_hash(&options) };
                inner.cache.peek(&base_key).or_else(|| match base {
                    DeltaBase::Job(id) => inner
                        .jobs
                        .get(&id)
                        .filter(|j| j.key == base_key)
                        .and_then(|j| j.outcome.as_ref())
                        .and_then(|o| o.result().cloned()),
                    DeltaBase::Graph(_) => None,
                })
            } else {
                None
            };
            (base_hash, base_graph, seed)
        };

        let (patched, touched) = match apply_delta(&base_graph, batch) {
            Ok(v) => v,
            Err(e) => {
                self.shared.lock().metrics.rejected += 1;
                return Err(Rejected::InvalidDelta { reason: e.to_string() });
            }
        };
        let patched = Arc::new(patched);
        let opts_hash = options_hash(&options);
        let key = CacheKey {
            graph: chained_graph_hash(base_hash, delta_hash(batch)),
            options: opts_hash,
        };
        let promote_key =
            CacheKey { graph: crate::hash::structural_hash(&patched), options: opts_hash };
        let footprint = estimated_device_bytes(&patched);
        let now = Instant::now();
        let deadline_at = options.deadline.map(|d| now + d);
        let warm = seed.map(|s| WarmContext { seed: s, touched: Arc::new(touched) });

        let mut inner = self.shared.lock();
        if inner.shutting_down {
            inner.metrics.rejected += 1;
            return Err(Rejected::ShuttingDown);
        }
        inner.metrics.delta_jobs += 1;
        self.admit(
            inner,
            ProtoJob {
                graph: patched,
                options,
                key,
                footprint,
                now,
                deadline_at,
                warm,
                promote_key: Some(promote_key),
            },
        )
    }

    /// The admission path shared by [`Self::submit`] and
    /// [`Self::submit_delta`]: fast paths (coalesce, cache hit), the
    /// deadline and SLO gates, then the bounded queue. Consumes the lock
    /// guard and performs its own condvar notifications.
    fn admit(&self, mut inner: MutexGuard<'_, Inner>, proto: ProtoJob) -> Result<JobId, Rejected> {
        let ProtoJob { graph, options, key, footprint, now, deadline_at, warm, promote_key } =
            proto;
        // Register the graph as a delta base under every hash it answers
        // to — even for submissions the gates below reject, so a client can
        // chain off a base whose own job was shed.
        inner.bases.entry(key.graph).or_insert_with(|| Arc::clone(&graph));
        if let Some(pk) = promote_key {
            inner.bases.entry(pk.graph).or_insert_with(|| Arc::clone(&graph));
        }
        let state = |status, outcome| JobState {
            graph: Arc::clone(&graph),
            options,
            key,
            footprint,
            status,
            outcome,
            cancel: Arc::new(AtomicBool::new(false)),
            submitted_at: now,
            deadline_at,
            attempts: 0,
            avoid: None,
            warm: warm.clone(),
            promote_key,
        };
        // Coalesce onto an identical in-flight job.
        if inner.inflight.contains_key(&key) {
            let id = inner.alloc_id();
            inner.jobs.insert(id, state(JobStatus::Queued, None));
            inner.inflight.get_mut(&key).expect("checked above").followers.push(id);
            inner.cache.note_coalesced();
            inner.metrics.submitted += 1;
            return Ok(id);
        }
        // Content-addressed cache hit: completed before it ever queued. A
        // free result beats every other admission decision — deadline
        // included, since serving it costs no queue slot and no device time.
        if let Some(result) = inner.cache.lookup(&key) {
            let id = inner.alloc_id();
            inner.jobs.insert(id, state(JobStatus::Queued, None));
            inner.metrics.submitted += 1;
            inner.finalize(id, JobOutcome::Completed { result, path: ExecPath::CacheHit });
            drop(inner);
            self.shared.done_cv.notify_all();
            return Ok(id);
        }
        // Dead on arrival: the deadline passed before admission. Admitted
        // (the caller holds an awaitable id) but expired immediately, never
        // occupying a queue slot.
        if deadline_at.is_some_and(|d| now >= d) {
            let id = inner.alloc_id();
            inner.jobs.insert(id, state(JobStatus::Queued, None));
            inner.metrics.submitted += 1;
            inner.metrics.expired_admission += 1;
            inner.finalize(id, JobOutcome::Expired { stage: None });
            drop(inner);
            self.shared.done_cv.notify_all();
            return Ok(id);
        }
        // Unattainable SLO: the estimated execution time already exceeds
        // the whole deadline budget, so running the job could only produce
        // a late result. Shed at the door, honestly.
        if inner.shed_unattainable {
            if let (Some(d), Some(estimated)) =
                (deadline_at, inner.metrics.estimate_exec(footprint))
            {
                let budget = d.saturating_duration_since(now);
                if estimated > budget {
                    inner.metrics.rejected += 1;
                    inner.metrics.rejected_slo += 1;
                    return Err(Rejected::WontMeetDeadline { estimated, budget });
                }
            }
        }
        // Cold: admission control, then the queue.
        if !inner.queue.has_room() {
            inner.metrics.rejected += 1;
            inner.metrics.rejected_queue_full += 1;
            return Err(Rejected::QueueFull { capacity: inner.queue.capacity() });
        }
        let id = inner.alloc_id();
        inner.jobs.insert(id, state(JobStatus::Queued, None));
        let admitted = inner.queue.push(id, options.priority);
        debug_assert!(admitted, "has_room was checked under the same lock");
        inner.inflight.insert(key, InFlight { leader: id, followers: Vec::new() });
        inner.metrics.submitted += 1;
        drop(inner);
        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// Current lifecycle state of a job, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.lock().jobs.get(&id).map(|j| j.status)
    }

    /// Requests cooperative cancellation. Returns `true` when the request
    /// was registered before the job reached a terminal state — the job
    /// will terminate as [`JobOutcome::Cancelled`] at its next checkpoint
    /// (immediately, when still queued). A `true` return is a promise the
    /// flag was seen in time only for queued and stage-gated work; a pooled
    /// run past its dequeue checkpoint completes normally.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut inner = self.shared.lock();
        let Some(job) = inner.jobs.get(&id) else { return false };
        if job.outcome.is_some() {
            return false;
        }
        job.cancel.store(true, Ordering::SeqCst);
        let status = job.status;
        let key = job.key;
        if status == JobStatus::Queued {
            // Finalize now rather than at the dequeue checkpoint so awaiters
            // resolve without a worker in the loop. The queue may still hold
            // the id; the dequeue checkpoint skips finalized entries.
            let is_leader = inner.inflight.get(&key).map(|i| i.leader) == Some(id);
            inner.finalize(id, JobOutcome::Cancelled { stage: None });
            if is_leader {
                inner.promote_follower(key);
            } else if let Some(inf) = inner.inflight.get_mut(&key) {
                inf.followers.retain(|f| *f != id);
            }
            drop(inner);
            self.shared.done_cv.notify_all();
            self.shared.work_cv.notify_all();
        }
        true
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// outcome. In manual mode ([`ServerConfig::workers`] = 0) drive
    /// execution with [`Self::process_one`] first — awaiting an unprocessed
    /// job would block forever.
    ///
    /// # Panics
    ///
    /// Panics on an unknown job id.
    pub fn await_result(&self, id: JobId) -> JobOutcome {
        let mut inner = self.shared.lock();
        loop {
            let job = inner.jobs.get(&id).expect("await_result of an unknown job id");
            if let Some(outcome) = &job.outcome {
                return outcome.clone();
            }
            inner = self.shared.done_cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking probe of a job's outcome.
    pub fn try_result(&self, id: JobId) -> Option<JobOutcome> {
        self.shared.lock().jobs.get(&id).and_then(|j| j.outcome.clone())
    }

    /// Manual-mode step: dispatches and synchronously runs the next
    /// runnable job, applying the same dequeue checkpoints as the worker
    /// loop. Returns `false` when nothing is runnable. Usable (but rarely
    /// useful) alongside worker threads.
    pub fn process_one(&self) -> bool {
        let mut inner = self.shared.lock();
        match next_action(&self.shared, &mut inner) {
            Action::Run(id, placement) => {
                execute(&self.shared, inner, id, placement);
                true
            }
            Action::Wait => false,
        }
    }

    /// Manual-mode convenience: process until the queue drains.
    pub fn run_until_idle(&self) {
        while self.process_one() {}
    }

    /// Runs one expiry sweep over the queued jobs right now, expiring every
    /// job whose deadline has passed while it waited. Returns the number
    /// expired. A worker-mode server runs this automatically every
    /// [`ServerConfig::sweep_interval`]; manual-mode tests call it directly.
    pub fn sweep_expired(&self) -> usize {
        let mut inner = self.shared.lock();
        let expired = sweep_expired_locked(&mut inner, Instant::now());
        let queue_nonempty = !inner.queue.is_empty();
        drop(inner);
        if expired > 0 {
            self.shared.done_cv.notify_all();
        }
        if queue_nonempty {
            self.shared.work_cv.notify_all();
        }
        expired
    }

    /// Serialises the current result cache into a snapshot byte image
    /// (format: [`crate::persist`]), LRU-first so a restore reproduces the
    /// recency order.
    pub fn snapshot_cache(&self) -> Vec<u8> {
        self.shared.lock().cache.snapshot()
    }

    /// Writes the cache snapshot to `path` atomically (temp file + rename,
    /// so a crash mid-write can't leave a torn snapshot under the real
    /// name). Returns the number of entries captured.
    pub fn snapshot_cache_to(&self, path: &Path) -> std::io::Result<usize> {
        let (bytes, entries) = {
            let inner = self.shared.lock();
            (inner.cache.snapshot(), inner.cache.entries())
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(entries)
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> ServeMetrics {
        let inner = self.shared.lock();
        ServeMetrics {
            submitted: inner.metrics.submitted,
            rejected: inner.metrics.rejected,
            rejected_queue_full: inner.metrics.rejected_queue_full,
            rejected_slo: inner.metrics.rejected_slo,
            completed: inner.metrics.completed,
            failed: inner.metrics.failed,
            cancelled: inner.metrics.cancelled,
            expired: inner.metrics.expired,
            expired_admission: inner.metrics.expired_admission,
            expired_sweep: inner.metrics.expired_sweep,
            expired_dequeue: inner.metrics.expired_dequeue,
            expired_stage: inner.metrics.expired_stage,
            expired_settle: inner.metrics.expired_settle,
            shed_predicted: inner.metrics.shed_predicted,
            retried_jobs: inner.metrics.retried_jobs,
            failed_over_jobs: inner.metrics.failed_over_jobs,
            breaker_trips: inner.pool.breaker_trips(),
            breaker_reinstatements: inner.pool.breaker_reinstatements(),
            quarantined_devices: inner.pool.quarantined_devices(),
            pooled_jobs: inner.metrics.pooled_jobs,
            sharded_jobs: inner.metrics.sharded_jobs,
            exchange_rounds: inner.metrics.exchange_rounds,
            ghost_bytes: inner.metrics.ghost_bytes,
            degraded_jobs: inner.metrics.degraded_jobs,
            delta_jobs: inner.metrics.delta_jobs,
            warm_started_jobs: inner.metrics.warm_started_jobs,
            cache_restored_entries: inner.metrics.cache_restored_entries,
            cache_restore_failures: inner.metrics.cache_restore_failures,
            queue_depth: inner.queue.len(),
            max_queue_depth: inner.queue.max_depth(),
            in_flight: inner.metrics.in_flight,
            max_in_flight: inner.metrics.max_in_flight,
            queue_wait: LatencyStats::from_samples(&inner.metrics.queue_wait_ms),
            exec: LatencyStats::from_samples(&inner.metrics.exec_ms),
            total: LatencyStats::from_samples(&inner.metrics.total_ms),
            cache: inner.cache.stats(),
            cache_entries: inner.cache.entries(),
            cache_bytes: inner.cache.bytes(),
            devices: inner.pool.slot_stats(),
        }
    }

    /// Stops accepting submissions, drains the queue, and joins the
    /// workers. In manual mode the drain happens inline. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut inner = self.shared.lock();
            inner.shutting_down = true;
            // Quarantines make no sense during a drain: better a suspect
            // device than jobs stranded behind an empty pool with no one
            // left to observe the backoff expire.
            inner.pool.lift_quarantines();
        }
        self.shared.work_cv.notify_all();
        self.shared.sweep_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.sweeper.take() {
            let _ = handle.join();
        }
        // Manual mode (or freshly-shut-down workers racing a late promote):
        // drain whatever is still queued so awaiters resolve.
        self.run_until_idle();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
