//! Content addressing: structural hashes of graphs and job options.
//!
//! The result cache is keyed by *content*, not identity — two submissions of
//! structurally equal graphs with semantically equal options share a key no
//! matter where the `Csr` values came from. The hash is FNV-1a over the CSR
//! arrays (offsets, targets, weight bit patterns) plus every
//! result-affecting option field. Scheduling-only fields (priority,
//! deadline) are deliberately left out: they change *when* a job runs, never
//! *what* it computes.

use crate::job::JobOptions;
use cd_core::{Algorithm, HashPlacement, ThreadAssignment, UpdateStrategy};
use cd_graph::{Csr, DeltaBatch, DeltaOp};

/// 64-bit FNV-1a, the same construction gpusim uses for fault-plan seeding:
/// tiny, dependency-free, and stable across platforms.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to 64 bits (stable across word sizes).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by bit pattern — exact, so two configs hash equal
    /// iff their floats are bit-identical, matching the bit-identity the
    /// cache promises.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Structural hash of a CSR graph: vertex count, offsets, targets, and
/// weight bit patterns. Equal CSRs hash equal; the converse holds up to
/// 64-bit collision odds, which is the usual content-addressing bargain.
pub fn structural_hash(graph: &Csr) -> u64 {
    let mut h = Fnv1a::new();
    h.write_usize(graph.num_vertices());
    for &o in graph.offsets() {
        h.write_usize(o);
    }
    for &t in graph.targets() {
        h.write_u64(t as u64);
    }
    for &w in graph.weights() {
        h.write_f64(w);
    }
    h.finish()
}

/// Hash of every result-affecting field of [`JobOptions`]: the selected
/// portfolio algorithm plus its full configuration.
///
/// The algorithm discriminant comes **first**: two submissions of the same
/// graph under different algorithms compute different partitions, so they
/// must never share a cache line — including through the delta-promotion
/// path, where a delta job's result is re-inserted under the structural
/// hash of its patched graph. That promoted key carries this options hash
/// too, so one algorithm's partition can never be served to another.
///
/// The execution profile contributes **nothing** to the key: the four-way
/// equivalence suite enforces (in CI, on every medium workload, across
/// thread counts) that Instrumented/Fast/Racecheck/Parallel produce
/// bit-identical labels and Q, so a result computed under one profile *is*
/// the result under any other. Coalescing them into one cache line means a
/// Parallel submission warms the cache for Fast clients and vice versa
/// instead of recomputing per profile. Profile-dependent observability
/// (metrics, race reports) is not part of the cached result.
pub fn options_hash(options: &JobOptions) -> u64 {
    let cfg = &options.config;
    let mut h = Fnv1a::new();
    h.write_u64(match options.algorithm {
        Algorithm::Louvain => 0,
        Algorithm::Leiden => 1,
        Algorithm::LpaSync => 2,
        Algorithm::LpaAsync => 3,
    });
    h.write_f64(cfg.threshold_bin);
    h.write_f64(cfg.threshold_final);
    h.write_usize(cfg.size_limit);
    h.write_f64(cfg.stage_threshold);
    h.write_u64(match cfg.update_strategy {
        UpdateStrategy::PerBucket => 0,
        UpdateStrategy::Relaxed => 1,
    });
    h.write_u64(match cfg.hash_placement {
        HashPlacement::Auto => 0,
        HashPlacement::ForceGlobal => 1,
    });
    h.write_u64(match cfg.assignment {
        ThreadAssignment::DegreeBinned => 0,
        ThreadAssignment::NodeCentric => 1,
    });
    h.write_usize(cfg.max_iterations);
    h.write_usize(cfg.max_stages);
    h.write_usize(cfg.global_bucket_blocks);
    h.write_u64(cfg.pruning as u64);
    h.write_usize(cfg.resync_interval);
    // Retry policy cannot change a fault-free run's result, but it is part
    // of the configuration a degraded/faulty deployment observes; keep it.
    h.write_usize(cfg.retry.max_attempts);
    h.write_u64(cfg.retry.backoff_base.as_nanos() as u64);
    h.write_u64(cfg.retry.backoff_multiplier as u64);
    // A slot-targeted fault plan can change what a run produces (absorbed
    // bit flips, degraded recovery), so faulty submissions must never share
    // a cache line with fault-free ones — or with differently-faulty ones.
    match &options.fault {
        None => h.write_u64(0),
        Some(f) => {
            h.write_u64(1);
            h.write_usize(f.device);
            h.write_u64(f.plan.seed);
            h.write_f64(f.plan.abort_rate);
            h.write_f64(f.plan.stuck_rate);
            h.write_f64(f.plan.bitflip_rate);
            h.write_u64(f.plan.watchdog_cycle_budget);
        }
    }
    h.finish()
}

/// Content hash of a delta batch: vertex count plus every op in order
/// (tag, canonical endpoints, weight bits). Order matters — deltas are
/// applied sequentially, so `[A, B]` and `[B, A]` are different edits even
/// when they commute structurally.
pub fn delta_hash(batch: &DeltaBatch) -> u64 {
    let mut h = Fnv1a::new();
    h.write_usize(batch.num_vertices());
    for op in batch.ops() {
        match *op {
            DeltaOp::Insert { u, v, w } => {
                h.write_u64(0);
                h.write_u64(u as u64);
                h.write_u64(v as u64);
                h.write_f64(w);
            }
            DeltaOp::Delete { u, v } => {
                h.write_u64(1);
                h.write_u64(u as u64);
                h.write_u64(v as u64);
            }
            DeltaOp::Reweight { u, v, w } => {
                h.write_u64(2);
                h.write_u64(u as u64);
                h.write_u64(v as u64);
                h.write_f64(w);
            }
        }
    }
    h.finish()
}

/// Graph hash of `base` after applying a delta with hash `delta`, *without
/// materializing the patched graph*: `fnv(base_hash, delta_hash)`.
///
/// This is how delta chains warm-hit: a resubmitted chain
/// `base → d1 → d2` folds to the same chained hash both times, so the
/// second submission is a pure cache lookup. Because `apply_delta` and the
/// from-scratch builder produce bit-identical CSRs, every completed delta
/// job is *also* inserted under the [`structural_hash`] of its patched
/// graph — promoting the result to a plain base that cold submissions of
/// the same graph can hit.
pub fn chained_graph_hash(base_graph_hash: u64, delta: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(base_graph_hash);
    h.write_u64(delta);
    h.finish()
}

/// The content address of a (graph, options) pair — the key of the result
/// cache and of in-flight coalescing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`structural_hash`] of the input graph.
    pub graph: u64,
    /// [`options_hash`] of the result-affecting options.
    pub options: u64,
}

impl CacheKey {
    /// Computes the key for a submission.
    pub fn compute(graph: &Csr, options: &JobOptions) -> Self {
        Self { graph: structural_hash(graph), options: options_hash(options) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use cd_gpusim::Profile;
    use cd_graph::{Csr, GraphBuilder, VertexId};
    use std::time::Duration;

    fn ring(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            b.add_edge(v as VertexId, ((v + 1) % n) as VertexId, 1.0);
        }
        b.build()
    }

    #[test]
    fn structural_hash_is_content_addressed() {
        // Two independently built but structurally equal graphs share a hash.
        assert_eq!(structural_hash(&ring(16)), structural_hash(&ring(16)));
        assert_ne!(structural_hash(&ring(16)), structural_hash(&ring(17)));

        // A weight change flips the hash even when topology is unchanged.
        let mut b = GraphBuilder::new(16);
        for v in 0..16u32 {
            b.add_edge(v, (v + 1) % 16, if v == 3 { 2.0 } else { 1.0 });
        }
        assert_ne!(structural_hash(&ring(16)), structural_hash(&b.build()));
    }

    #[test]
    fn options_hash_separates_semantic_from_scheduling() {
        let base = JobOptions::default();

        // Scheduling knobs do not move the key.
        let scheduled = base.with_priority(Priority::High).with_deadline(Duration::from_millis(5));
        assert_eq!(options_hash(&base), options_hash(&scheduled));

        // Semantic knobs do.
        assert_ne!(options_hash(&base), options_hash(&base.with_pruning(true)));

        // The algorithm is the most semantic knob of all: every portfolio
        // member gets its own key, pairwise distinct.
        let hashes: Vec<u64> = cd_core::Algorithm::ALL
            .iter()
            .map(|&a| options_hash(&base.with_algorithm(a)))
            .collect();
        for i in 0..hashes.len() {
            for j in 0..i {
                assert_ne!(
                    hashes[i],
                    hashes[j],
                    "{} and {} share an options hash",
                    cd_core::Algorithm::ALL[i],
                    cd_core::Algorithm::ALL[j]
                );
            }
        }
        assert_eq!(options_hash(&base), hashes[0], "Louvain is the default");

        // The execution profile is *not* semantic: all four profiles are
        // bit-identical (enforced by the equivalence suite), so they share
        // one cache line and warm each other's entries.
        for p in [Profile::Instrumented, Profile::Fast, Profile::Racecheck, Profile::Parallel] {
            assert_eq!(options_hash(&base), options_hash(&base.with_profile(p)), "{p}");
        }

        // A slot-targeted fault plan is semantic too: a faulty run may not
        // produce what a fault-free run would, so it gets its own key.
        let plan = cd_gpusim::FaultPlan::seeded(7).with_abort_rate(0.5);
        let faulty = base.with_fault(0, plan);
        assert_ne!(options_hash(&base), options_hash(&faulty));
        assert_ne!(options_hash(&faulty), options_hash(&base.with_fault(1, plan)));
    }

    #[test]
    fn delta_hash_is_order_sensitive_and_chains_fold() {
        use cd_graph::DeltaBuilder;
        let mk = |first_insert: bool| {
            let mut b = DeltaBuilder::new(16);
            if first_insert {
                b.insert(0, 5, 1.0).unwrap();
                b.delete(1, 2).unwrap();
            } else {
                b.delete(1, 2).unwrap();
                b.insert(0, 5, 1.0).unwrap();
            }
            b.build()
        };
        // Same ops, same order → same hash; same ops, different order → not.
        assert_eq!(delta_hash(&mk(true)), delta_hash(&mk(true)));
        assert_ne!(delta_hash(&mk(true)), delta_hash(&mk(false)));

        // Chained hashes are deterministic and position-sensitive.
        let (a, b) = (delta_hash(&mk(true)), delta_hash(&mk(false)));
        let g = structural_hash(&ring(16));
        assert_eq!(chained_graph_hash(g, a), chained_graph_hash(g, a));
        assert_ne!(chained_graph_hash(g, a), chained_graph_hash(g, b));
        assert_ne!(
            chained_graph_hash(chained_graph_hash(g, a), b),
            chained_graph_hash(chained_graph_hash(g, b), a)
        );
    }

    #[test]
    fn cache_key_combines_both_axes() {
        let g = ring(12);
        let a = CacheKey::compute(&g, &JobOptions::default());
        let b = CacheKey::compute(&g, &JobOptions::default().with_pruning(true));
        assert_eq!(a.graph, b.graph);
        assert_ne!(a.options, b.options);
        assert_ne!(a, b);
    }
}
