//! Offline stand-in for [criterion](https://crates.io/crates/criterion): the
//! build environment has no crates.io access, so this crate provides the same
//! macro/builder surface over a minimal wall-clock timer. Benchmarks print
//! mean iteration time per benchmark id; there is no statistical analysis,
//! plotting, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; collects configuration and runs groups.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time run before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let label = id.to_string();
        run_bench(self, &label, f);
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &label, f);
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Handle passed to benchmark closures; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // use the observed cost to pick an iteration count per sample.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < criterion.warm_up_time || warm_iters == 0 {
        f(&mut bencher);
        warm_iters += 1;
        if warm_start.elapsed() > criterion.warm_up_time.mul_f64(4.0) {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let budget = criterion.measurement_time.as_secs_f64() / criterion.sample_size as f64;
    let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut samples = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    println!(
        "{label:<48} mean {:>12} median {:>12} ({} samples x {} iters)",
        fmt_time(mean),
        fmt_time(median),
        samples.len(),
        iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group: a function that applies `config` and runs each
/// target in sequence.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
