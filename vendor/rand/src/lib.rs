//! Offline stand-in for [rand](https://crates.io/crates/rand): the build
//! environment has no crates.io access, so this crate provides the subset the
//! workspace uses — `rngs::SmallRng` (xoshiro256++ seeded via splitmix64,
//! matching rand 0.8's SmallRng on 64-bit targets), `SeedableRng::seed_from_u64`,
//! and the `Rng` extension methods `gen`/`gen_range`.
//!
//! Streams are deterministic for a given seed but are NOT guaranteed to match
//! upstream rand bit-for-bit; all workspace determinism tests compare runs of
//! this implementation against itself.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform random words.
pub trait RngCore {
    /// Returns the next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as in rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Unbiased via rejection on the top multiple of `span`.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring rand's `Rng`.
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ seeded with
    /// splitmix64, as rand 0.8's `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }
}
