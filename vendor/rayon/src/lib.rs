//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of rayon's data-parallel iterator API that the workspace
//! actually uses. Parallel iterators are *eager*: each adapter materializes
//! its output by splitting the input into contiguous chunks and processing
//! the chunks on a persistent worker pool, preserving input order. Chunk
//! boundaries depend only on the input length and the thread count, so
//! results are deterministic on a given machine — the property
//! `cd-gpusim`'s Thrust collectives rely on.
//!
//! The pool is spawned once per process and reused by every parallel call:
//! the simulator issues thousands of short kernel launches per run, and
//! spawning OS threads for each (the previous `std::thread::scope`
//! implementation) dominated their cost. A parallel call issued *from* a
//! pool worker (nested parallelism) runs its chunks serially on that worker
//! — same chunk boundaries, so results are unchanged — which also makes
//! nesting deadlock-free.

use std::ops::{Range, RangeInclusive};

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParallelExtend, ParallelSlice, ParallelSliceMut,
    };
}

fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The persistent worker pool behind every parallel call.
mod workers {
    use std::cell::Cell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

    type Job = Box<dyn FnOnce() + Send + 'static>;

    thread_local! {
        static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    }

    /// True on a pool worker thread: a nested parallel call must run inline
    /// (every worker may already be busy with its caller's sibling chunks,
    /// so queueing and blocking could deadlock).
    pub(crate) fn on_worker_thread() -> bool {
        IS_WORKER.with(|w| w.get())
    }

    fn sender() -> &'static mpsc::Sender<Job> {
        static POOL: OnceLock<mpsc::Sender<Job>> = OnceLock::new();
        POOL.get_or_init(|| {
            let (tx, rx) = mpsc::channel::<Job>();
            let rx = Arc::new(Mutex::new(rx));
            for i in 0..super::worker_count() {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("par-worker-{i}"))
                    .spawn(move || {
                        IS_WORKER.with(|w| w.set(true));
                        loop {
                            let job = match rx.lock() {
                                Ok(guard) => guard.recv(),
                                Err(_) => break,
                            };
                            match job {
                                Ok(job) => job(),
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("failed to spawn pool worker");
            }
            tx
        })
    }

    /// Completion latch shared between one `run_scoped` call and its jobs.
    struct Latch {
        remaining: AtomicUsize,
        lock: Mutex<()>,
        done: Condvar,
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    }

    /// Runs every job on the pool and blocks until all have finished; the
    /// first captured panic is re-raised on the caller.
    pub(crate) fn run_scoped(jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        let latch = Arc::new(Latch {
            remaining: AtomicUsize::new(jobs.len()),
            lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let tx = sender();
        for job in jobs {
            // SAFETY: `run_scoped` does not return until `remaining` hits
            // zero, i.e. until every job has run to completion (or panicked),
            // so the non-'static borrows the jobs capture outlive their use.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job)
            };
            let latch = Arc::clone(&latch);
            tx.send(Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    if let Ok(mut slot) = latch.panic.lock() {
                        slot.get_or_insert(payload);
                    }
                }
                if latch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _guard = latch.lock.lock().expect("latch lock poisoned");
                    latch.done.notify_all();
                }
            }))
            .expect("worker pool hung up");
        }
        let mut guard = latch.lock.lock().expect("latch lock poisoned");
        while latch.remaining.load(Ordering::Acquire) > 0 {
            guard = latch.done.wait(guard).expect("latch lock poisoned");
        }
        drop(guard);
        let payload = latch.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Splits `items` into contiguous chunks of at least `min_len` elements.
fn split_parts<T>(mut items: Vec<T>, chunk: usize) -> Vec<Vec<T>> {
    let mut parts = Vec::with_capacity(items.len().div_ceil(chunk));
    while items.len() > chunk {
        let rest = items.split_off(chunk);
        parts.push(items);
        items = rest;
    }
    parts.push(items);
    parts
}

/// Splits `items` into contiguous chunks of at least `min_len` elements and
/// runs `f` over each chunk on the worker pool, returning the per-chunk
/// outputs concatenated in input order.
fn run_chunked<T, U, F>(items: Vec<T>, min_len: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(Vec<T>) -> Vec<U> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count();
    let chunk = n.div_ceil(workers).max(min_len).max(1);
    if chunk >= n {
        return f(items);
    }
    if workers::on_worker_thread() {
        // Nested parallelism: same chunk boundaries, executed serially.
        let mut out = Vec::with_capacity(n);
        for part in split_parts(items, chunk) {
            out.extend(f(part));
        }
        return out;
    }
    let parts = split_parts(items, chunk);
    let mut outputs: Vec<Option<Vec<U>>> = parts.iter().map(|_| None).collect();
    {
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = parts
            .into_iter()
            .zip(outputs.iter_mut())
            .map(|(part, slot)| {
                let job: Box<dyn FnOnce() + Send + '_> =
                    Box::new(move || *slot = Some(f(part)));
                job
            })
            .collect();
        workers::run_scoped(jobs);
    }
    let mut out = Vec::with_capacity(n);
    for part in outputs {
        out.extend(part.expect("parallel worker panicked"));
    }
    out
}

/// An eager parallel iterator: a materialized item list plus a chunking hint.
pub struct Par<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> Par<T> {
    fn new(items: Vec<T>) -> Self {
        Self { items, min_len: 1 }
    }

    /// Lower bound on the chunk size handed to one worker thread.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Parallel map, preserving order.
    pub fn map<U, F>(self, f: F) -> Par<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let min_len = self.min_len;
        Par { items: run_chunked(self.items, min_len, |part| part.into_iter().map(&f).collect()), min_len }
    }

    /// Parallel map with a per-worker scratch value built by `init`.
    pub fn map_init<S, U, I, F>(self, init: I, f: F) -> Par<U>
    where
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        let min_len = self.min_len;
        let items = run_chunked(self.items, min_len, |part| {
            let mut scratch = init();
            part.into_iter().map(|x| f(&mut scratch, x)).collect()
        });
        Par { items, min_len }
    }

    /// Parallel filter, preserving order.
    pub fn filter<F>(self, pred: F) -> Par<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let min_len = self.min_len;
        Par { items: run_chunked(self.items, min_len, |part| part.into_iter().filter(|x| pred(x)).collect()), min_len }
    }

    /// Parallel filter-map, preserving order.
    pub fn filter_map<U, F>(self, f: F) -> Par<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        let min_len = self.min_len;
        Par { items: run_chunked(self.items, min_len, |part| part.into_iter().filter_map(&f).collect()), min_len }
    }

    /// Parallel flat-map over a sequential per-item iterator.
    pub fn flat_map_iter<U, I, F>(self, f: F) -> Par<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let min_len = self.min_len;
        Par { items: run_chunked(self.items, min_len, |part| part.into_iter().flat_map(&f).collect()), min_len }
    }

    /// Pairs this iterator with another of the same length.
    pub fn zip<U: Send, Z: IntoParallelIterator<Item = U>>(self, other: Z) -> Par<(T, U)> {
        let other = other.into_par_iter();
        Par {
            items: self.items.into_iter().zip(other.items).collect(),
            min_len: self.min_len,
        }
    }

    /// Folds fixed-size chunks of the input into one accumulator each —
    /// rayon's `fold_chunks`: the output is a parallel iterator over the
    /// per-chunk accumulators, with chunk boundaries fixed by `chunk_size`
    /// (deterministic regardless of thread count).
    pub fn fold_chunks<A, I, F>(self, chunk_size: usize, init: I, fold: F) -> Par<A>
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let mut groups: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while items.len() > chunk_size {
            let rest = items.split_off(chunk_size);
            groups.push(items);
            items = rest;
        }
        if !items.is_empty() {
            groups.push(items);
        }
        let items = run_chunked(groups, 1, |part| {
            part.into_iter()
                .map(|group| group.into_iter().fold(init(), &fold))
                .collect()
        });
        Par { items, min_len: 1 }
    }

    /// Parallel for-each.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, self.min_len, |part| {
            part.into_iter().for_each(&f);
            Vec::<()>::new()
        });
    }

    /// Parallel for-each with a per-worker scratch value.
    pub fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) + Sync,
    {
        run_chunked(self.items, self.min_len, |part| {
            let mut scratch = init();
            part.into_iter().for_each(|x| f(&mut scratch, x));
            Vec::<()>::new()
        });
    }

    /// Parallel reduction with an identity constructor, like rayon's
    /// `reduce`. `op` must be associative.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let partials = run_chunked(self.items, self.min_len, |part| {
            vec![part.into_iter().fold(identity(), &op)]
        });
        partials.into_iter().fold(identity(), op)
    }

    /// Parallel sum (per-chunk partial sums combined in chunk order).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        run_chunked(self.items, self.min_len, |part| vec![part.into_iter().sum::<S>()])
            .into_iter()
            .sum()
    }

    /// Maximum element.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        run_chunked(self.items, self.min_len, |part| part.into_iter().max().into_iter().collect())
            .into_iter()
            .max()
    }

    /// Number of elements satisfying the upstream pipeline.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects into a container (only `Vec` is supported).
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<T>,
    {
        C::from_par(self)
    }
}

impl<T: Copy + Send + Sync> Par<&T> {
    /// Copies borrowed items, like `Iterator::copied`.
    pub fn copied(self) -> Par<T> {
        Par { items: self.items.into_iter().copied().collect(), min_len: self.min_len }
    }
}

/// Conversion into a [`Par`] iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par::new(self)
    }
}

impl<T: Send> IntoParallelIterator for Par<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        self
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> Par<&'a T> {
        Par::new(self.iter().collect())
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> Par<$t> {
                Par::new(self.collect())
            }
        }
        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> Par<$t> {
                Par::new(self.collect())
            }
        }
    )*};
}
impl_range_par!(usize, u32, u64, i32, i64);

/// Slice-side entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> Par<&T>;
    /// Parallel iterator over contiguous sub-slices of length `size`.
    fn par_chunks(&self, size: usize) -> Par<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<&T> {
        Par::new(self.iter().collect())
    }
    fn par_chunks(&self, size: usize) -> Par<&[T]> {
        Par::new(self.chunks(size.max(1)).collect())
    }
}

/// Mutable slice-side entry points (`par_chunks_mut`, `par_sort_by_key`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable sub-slices of length `size`.
    fn par_chunks_mut(&mut self, size: usize) -> Par<&mut [T]>;
    /// Stable parallel sort by key (sequential fallback: std stable sort).
    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K>(&mut self, key: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> Par<&mut [T]> {
        Par::new(self.chunks_mut(size.max(1)).collect())
    }
    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K>(&mut self, key: F) {
        self.sort_by_key(key);
    }
}

/// `Vec::par_extend` (`rayon::iter::ParallelExtend`).
pub trait ParallelExtend<T: Send> {
    /// Extends the container with the items of a parallel iterator.
    fn par_extend<I: IntoParallelIterator<Item = T>>(&mut self, par: I);
}

impl<T: Send> ParallelExtend<T> for Vec<T> {
    fn par_extend<I: IntoParallelIterator<Item = T>>(&mut self, par: I) {
        self.extend(par.into_par_iter().items);
    }
}

/// Collection from a parallel iterator (`rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the container from the iterator's items.
    fn from_par(par: Par<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par(par: Par<T>) -> Self {
        par.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 2).collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn filter_and_count() {
        let n = (0..1000usize).into_par_iter().filter(|&x| x % 3 == 0).count();
        assert_eq!(n, 334);
    }

    #[test]
    fn for_each_runs_every_item() {
        let hits = AtomicUsize::new(0);
        (0..5000usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn reduce_sums() {
        let total = (1..=100usize).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn fold_chunks_boundaries_are_fixed() {
        let acc: Vec<usize> =
            (0..10usize).into_par_iter().fold_chunks(4, || 0, |a, x| a + x).collect();
        assert_eq!(acc, vec![0 + 1 + 2 + 3, 4 + 5 + 6 + 7, 8 + 9]);
    }

    #[test]
    fn chunks_mut_and_zip() {
        let mut data = vec![0usize; 100];
        let bases: Vec<usize> = (0..10).map(|i| i * 1000).collect();
        data.par_chunks_mut(10).zip(bases.par_iter()).for_each(|(chunk, &base)| {
            for v in chunk.iter_mut() {
                *v = base;
            }
        });
        assert_eq!(data[5], 0);
        assert_eq!(data[95], 9000);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            (0..100_000usize).into_par_iter().for_each(|x| {
                assert!(x < 50_000, "boom");
            });
        });
        assert!(caught.is_err(), "a panic in a chunk must reach the caller");
        // The pool must survive the panic and keep serving calls.
        let total: usize = (1..=100usize).into_par_iter().sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn nested_parallel_calls_run_and_match_serial() {
        // An outer parallel call whose chunks issue parallel calls of their
        // own: the inner ones run inline on the worker, with the same chunk
        // boundaries, so the combined result matches the serial answer.
        let sums: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| (0..10_000usize).into_par_iter().map(|x| x * i).sum())
            .collect();
        let expected: usize = (0..10_000usize).sum();
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, expected * i);
        }
    }

    #[test]
    fn slice_entry_points() {
        let v = vec![3usize, 1, 4, 1, 5];
        let s: usize = v.par_iter().sum();
        assert_eq!(s, 14);
        assert_eq!(v.par_iter().copied().max(), Some(5));
        let mut out = vec![0usize];
        out.par_extend(v.par_iter().copied().filter(|&x| x > 2));
        assert_eq!(out, vec![0, 3, 4, 5]);
    }
}
