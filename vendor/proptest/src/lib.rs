//! Offline stand-in for [proptest](https://crates.io/crates/proptest): the
//! build environment has no crates.io access, so this crate re-implements the
//! subset the workspace uses — the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, `collection::vec`,
//! `ProptestConfig`, and the `prop_assert*` macros.
//!
//! Failing cases are reported with their seed but are **not shrunk**; each
//! case is reproducible because the per-case RNG seed is derived
//! deterministically from the case index.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies when sampling a case.
    pub type TestRng = SmallRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds from
        /// it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S> VecStrategy<S> {
        pub(crate) fn new(element: S, min: usize, max_exclusive: usize) -> Self {
            VecStrategy {
                element,
                min,
                max_exclusive,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min + 1 >= self.max_exclusive {
                self.min
            } else {
                rng.gen_range(self.min..self.max_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Sizes accepted by [`crate::collection::vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Returns `(min, max_exclusive)`.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// A reference to a strategy samples like the strategy itself.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::{IntoSizeRange, Strategy, VecStrategy};

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn from `size` (an exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        VecStrategy::new(element, min, max_exclusive)
    }
}

pub mod test_runner {
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` matters to this stand-in.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Executes test closures over `config.cases` deterministic RNG streams.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` once per configured case, panicking on the first
        /// failure with the case index (the seed) for reproduction.
        pub fn run<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), String>,
        {
            // Stable per-test stream: hash the test name into the seed so
            // different tests explore different inputs.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            for i in 0..self.config.cases {
                let seed = h ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let mut rng = TestRng::seed_from_u64(seed);
                if let Err(msg) = case(&mut rng) {
                    panic!("proptest `{name}` failed at case {i} (seed {seed:#x}): {msg}");
                }
            }
        }
    }
}

/// The items most tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                left,
                right
            ));
        }
    }};
}

/// Declares `#[test]` functions whose arguments are sampled from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($arg_pat:pat in $arg_strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run(::core::stringify!($name), |__proptest_rng| {
                    $(
                        let $arg_pat =
                            $crate::strategy::Strategy::sample(&($arg_strat), __proptest_rng);
                    )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b, c) in (0usize..10, 5u32..6, 1i32..100)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5, "b was {}", b);
            prop_assert!((1..100).contains(&c));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0usize..3, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn flat_map_dependent((n, v) in (2usize..8).prop_flat_map(|n|
            (Just(n), crate::collection::vec(0usize..n, n)))) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
