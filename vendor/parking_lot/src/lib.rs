//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot):
//! the build environment has no crates.io access, so this crate wraps
//! `std::sync` primitives behind parking_lot's poison-free API (the subset
//! the workspace uses).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-tolerant `lock()`.
#[derive(Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning (parking_lot has no
    /// poisoning; a panicked holder leaves the data as-is).
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutably borrows the inner value (no locking needed with `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-tolerant accessors.
#[derive(Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
