//! Exhaustive configuration matrix: every combination of update strategy,
//! hash placement, and thread assignment must produce a valid result of
//! reasonable quality — configuration knobs change costs, never correctness.

use community_gpu::core::{HashPlacement, ThreadAssignment, UpdateStrategy};
use community_gpu::prelude::*;

#[test]
fn every_configuration_is_sound() {
    let built = workload_by_name("com-dblp").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let q_singleton = modularity(g, &Partition::singleton(g.num_vertices()));
    let seq_q = louvain_sequential(g, &SequentialConfig::original()).modularity;

    for strategy in [UpdateStrategy::PerBucket, UpdateStrategy::Relaxed] {
        for placement in [HashPlacement::Auto, HashPlacement::ForceGlobal] {
            for assignment in [ThreadAssignment::DegreeBinned, ThreadAssignment::NodeCentric] {
                let mut cfg = GpuLouvainConfig::paper_default();
                cfg.update_strategy = strategy;
                cfg.hash_placement = placement;
                cfg.assignment = assignment;
                let res = louvain_gpu(&Device::k40m(), g, &cfg).unwrap();
                let label = format!("{strategy:?}/{placement:?}/{assignment:?}");

                // Structural soundness.
                assert_eq!(res.partition.len(), g.num_vertices(), "{label}");
                let q = modularity(g, &res.partition);
                assert!((q - res.modularity).abs() < 1e-9, "{label}: Q mismatch");
                // Quality floor: all configurations improve on singletons and
                // land within 15% of sequential on this well-structured graph.
                assert!(res.modularity > q_singleton, "{label}");
                assert!(
                    res.modularity > 0.85 * seq_q,
                    "{label}: Q {:.4} vs sequential {seq_q:.4}",
                    res.modularity
                );
            }
        }
    }
}

#[test]
fn hash_placement_never_changes_results() {
    // Placement is a performance knob: bit-identical outcomes.
    for name in ["com-amazon", "road-usa", "uk2002"] {
        let built = workload_by_name(name).unwrap().build(Scale::Tiny);
        let auto =
            louvain_gpu(&Device::k40m(), &built.graph, &GpuLouvainConfig::paper_default()).unwrap();
        let mut cfg = GpuLouvainConfig::paper_default();
        cfg.hash_placement = HashPlacement::ForceGlobal;
        let forced = louvain_gpu(&Device::k40m(), &built.graph, &cfg).unwrap();
        assert_eq!(
            auto.partition.as_slice(),
            forced.partition.as_slice(),
            "{name}: hash placement changed the partition"
        );
    }
}

#[test]
fn threshold_schedule_generalizes_two_level() {
    use community_gpu::core::{louvain_gpu_with_schedule, ThresholdSchedule};
    let built = workload_by_name("com-dblp").unwrap().build(Scale::Tiny);
    let cfg = GpuLouvainConfig::paper_default();
    let plain = louvain_gpu(&Device::k40m(), &built.graph, &cfg).unwrap();
    let sched =
        ThresholdSchedule::two_level(cfg.threshold_bin, cfg.threshold_final, cfg.size_limit);
    let via_schedule =
        louvain_gpu_with_schedule(&Device::k40m(), &built.graph, &cfg, &sched).unwrap();
    assert_eq!(plain.partition.as_slice(), via_schedule.partition.as_slice());

    // A multi-level schedule still produces a sound result.
    let multi = ThresholdSchedule::geometric(1e-2, 1e-6, 2000, 3);
    let res = louvain_gpu_with_schedule(&Device::k40m(), &built.graph, &cfg, &multi).unwrap();
    assert!(res.modularity > 0.85 * plain.modularity);
}
