//! Determinism integration tests.
//!
//! On unit-weight graphs every accumulated quantity is a small-integer sum in
//! f64, so the atomic-add ordering differences between runs cannot change any
//! value and the GPU algorithm is exactly reproducible. (On arbitrary real
//! weights, community volumes can differ in the last ulp between runs; the
//! paper's own device has the same property.)

use community_gpu::prelude::*;

#[test]
fn generators_are_deterministic() {
    for spec in WORKLOAD_SUITE.iter().take(6) {
        let a = spec.build(Scale::Tiny);
        let b = spec.build(Scale::Tiny);
        assert_eq!(a.graph, b.graph, "{}", spec.name);
    }
}

#[test]
fn gpu_runs_are_reproducible_on_unit_weights() {
    for name in ["com-dblp", "road-usa", "uk2002"] {
        let built = workload_by_name(name).unwrap().build(Scale::Tiny);
        let device = Device::k40m();
        let a = louvain_gpu(&device, &built.graph, &GpuLouvainConfig::paper_default()).unwrap();
        let b = louvain_gpu(&device, &built.graph, &GpuLouvainConfig::paper_default()).unwrap();
        assert_eq!(
            a.partition.as_slice(),
            b.partition.as_slice(),
            "{name}: partitions differ between runs"
        );
        assert_eq!(a.modularity.to_bits(), b.modularity.to_bits(), "{name}: modularity differs");
        assert_eq!(a.stages.len(), b.stages.len());
    }
}

#[test]
fn sequential_and_cpu_parallel_are_reproducible() {
    let built = workload_by_name("com-amazon").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let s1 = louvain_sequential(g, &SequentialConfig::original());
    let s2 = louvain_sequential(g, &SequentialConfig::original());
    assert_eq!(s1.partition.as_slice(), s2.partition.as_slice());

    let p1 = louvain_parallel_cpu(g, &ParallelCpuConfig::default());
    let p2 = louvain_parallel_cpu(g, &ParallelCpuConfig::default());
    assert_eq!(p1.partition.as_slice(), p2.partition.as_slice());
}

#[test]
fn device_config_does_not_change_results() {
    // The cost model prices the work; it must never steer the algorithm.
    let built = workload_by_name("com-dblp").unwrap().build(Scale::Tiny);
    let a = louvain_gpu(&Device::k40m(), &built.graph, &GpuLouvainConfig::paper_default()).unwrap();
    let mut cfg = DeviceConfig::tesla_k40m();
    cfg.num_sms = 4;
    cfg.clock_mhz = 2000.0;
    cfg.cycles_per_atomic = 99.0;
    let b =
        louvain_gpu(&Device::new(cfg), &built.graph, &GpuLouvainConfig::paper_default()).unwrap();
    assert_eq!(a.partition.as_slice(), b.partition.as_slice());
}
