//! Cross-crate quality integration tests: the GPU algorithm must match the
//! sequential reference within the tolerances the paper reports, across the
//! workload families of Table 1.

use community_gpu::prelude::*;

fn gpu_q(graph: &Csr) -> f64 {
    let device = Device::k40m();
    louvain_gpu(&device, graph, &GpuLouvainConfig::paper_default()).unwrap().modularity
}

#[test]
fn gpu_within_tolerance_of_sequential_across_families() {
    // One representative per family; the paper reports never more than 2%
    // below sequential *on average* at the default thresholds; individual
    // synchronous-update-hostile graphs (KKT grids) may dip further, exactly
    // as its Fig. 6 anomaly describes.
    let names = ["orkut", "uk2002", "copapers", "audikw", "rgg-sparse", "road-usa", "com-dblp"];
    let mut ratios = Vec::new();
    for name in names {
        let built = workload_by_name(name).unwrap().build(Scale::Tiny);
        let seq = louvain_sequential(&built.graph, &SequentialConfig::original());
        let q = gpu_q(&built.graph);
        let ratio = q / seq.modularity;
        assert!(
            ratio > 0.93,
            "{name}: GPU Q {q:.4} vs sequential {:.4} (ratio {ratio:.3})",
            seq.modularity
        );
        ratios.push(ratio);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg > 0.97, "average quality ratio {avg:.4} must be within ~2-3% of sequential");
}

#[test]
fn all_algorithms_agree_on_strong_structure() {
    let built = workload_by_name("com-dblp").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let truth_q = modularity(g, built.truth.as_ref().unwrap());

    let seq = louvain_sequential(g, &SequentialConfig::original()).modularity;
    let cpu = louvain_parallel_cpu(g, &ParallelCpuConfig::default()).modularity;
    let plm = louvain_plm(g, &PlmConfig::default()).modularity;
    let gpu = gpu_q(g);

    for (name, q) in [("seq", seq), ("cpu-par", cpu), ("plm", plm), ("gpu", gpu)] {
        assert!(q > 0.92 * truth_q, "{name}: Q {q:.4} too far below planted Q {truth_q:.4}");
    }
}

#[test]
fn gpu_partition_is_valid_and_consistent() {
    let built = workload_by_name("rgg-sparse").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let device = Device::k40m();
    let res = louvain_gpu(&device, g, &GpuLouvainConfig::paper_default()).unwrap();

    // Partition covers every vertex, and the reported modularity is the
    // from-scratch modularity of that partition.
    assert_eq!(res.partition.len(), g.num_vertices());
    let q = modularity(g, &res.partition);
    assert!((q - res.modularity).abs() < 1e-9);

    // The dendrogram flattens to the same partition.
    let flat = res.dendrogram.flatten();
    assert_eq!(flat.as_slice(), res.partition.as_slice());
}

#[test]
fn gpu_beats_singletons_on_every_workload() {
    for spec in WORKLOAD_SUITE {
        let built = spec.build(Scale::Tiny);
        let g = &built.graph;
        let q0 = modularity(g, &Partition::singleton(g.num_vertices()));
        let q = gpu_q(g);
        assert!(q > q0, "{}: GPU Q {q:.4} did not improve on singletons {q0:.4}", spec.name);
        assert!(q > 0.3, "{}: GPU Q {q:.4} suspiciously low", spec.name);
    }
}

#[test]
fn detected_communities_align_with_ground_truth() {
    use community_gpu::graph::{adjusted_rand_index, nmi};
    let built = workload_by_name("com-amazon").unwrap().build(Scale::Tiny);
    let truth = built.truth.as_ref().unwrap();
    let device = Device::k40m();
    let res = louvain_gpu(&device, &built.graph, &GpuLouvainConfig::paper_default()).unwrap();
    let nmi_score = nmi(&res.partition, truth);
    let ari_score = adjusted_rand_index(&res.partition, truth);
    // Louvain's resolution limit merges some planted communities, so
    // agreement is high but not perfect.
    assert!(nmi_score > 0.7, "NMI vs planted truth = {nmi_score:.3}");
    assert!(ari_score > 0.4, "ARI vs planted truth = {ari_score:.3}");
    // And trivially: the result agrees with itself.
    assert!((nmi(&res.partition, &res.partition) - 1.0).abs() < 1e-12);
}

#[test]
fn gpu_and_sequential_find_similar_structures() {
    use community_gpu::graph::nmi;
    let built = workload_by_name("com-dblp").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let seq = louvain_sequential(g, &SequentialConfig::original());
    let gpu = louvain_gpu(&Device::k40m(), g, &GpuLouvainConfig::paper_default()).unwrap();
    let agreement = nmi(&gpu.partition, &seq.partition);
    assert!(
        agreement > 0.75,
        "GPU and sequential partitions should describe the same structure (NMI {agreement:.3})"
    );
}

#[test]
fn relaxed_and_bucketed_strategies_close() {
    let built = workload_by_name("livejournal").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let device = Device::k40m();
    let bucketed = louvain_gpu(&device, g, &GpuLouvainConfig::paper_default()).unwrap();
    let mut cfg = GpuLouvainConfig::paper_default();
    cfg.update_strategy = community_gpu::core::UpdateStrategy::Relaxed;
    let relaxed = louvain_gpu(&device, g, &cfg).unwrap();
    let ratio = relaxed.modularity / bucketed.modularity;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "relaxed {:.4} vs bucketed {:.4}",
        relaxed.modularity,
        bucketed.modularity
    );
}
