//! End-to-end I/O integration: serialize a workload, read it back through
//! both supported formats, and verify the algorithms see the same graph.

use community_gpu::graph::io::{
    read_edge_list, read_matrix_market, write_edge_list, write_matrix_market,
};
use community_gpu::prelude::*;

#[test]
fn edge_list_roundtrip_preserves_results() {
    let built = workload_by_name("com-dblp").unwrap().build(Scale::Tiny);
    let g = &built.graph;

    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).unwrap();
    let g2 = read_edge_list(&buf[..]).unwrap();
    assert_eq!(g, &g2);

    let q1 = louvain_sequential(g, &SequentialConfig::original()).modularity;
    let q2 = louvain_sequential(&g2, &SequentialConfig::original()).modularity;
    assert_eq!(q1.to_bits(), q2.to_bits());
}

#[test]
fn matrix_market_roundtrip_preserves_results() {
    let built = workload_by_name("audikw").unwrap().build(Scale::Tiny);
    let g = &built.graph;

    let mut buf = Vec::new();
    write_matrix_market(g, &mut buf).unwrap();
    let g2 = read_matrix_market(&buf[..]).unwrap();
    assert_eq!(g, &g2);

    let r1 = louvain_gpu(&Device::k40m(), g, &GpuLouvainConfig::paper_default()).unwrap();
    let r2 = louvain_gpu(&Device::k40m(), &g2, &GpuLouvainConfig::paper_default()).unwrap();
    assert_eq!(r1.partition.as_slice(), r2.partition.as_slice());
}

#[test]
fn formats_cross_agree() {
    let built = workload_by_name("cnr2000").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let mut el = Vec::new();
    write_edge_list(g, &mut el).unwrap();
    let mut mm = Vec::new();
    write_matrix_market(g, &mut mm).unwrap();
    let from_el = read_edge_list(&el[..]).unwrap();
    let from_mm = read_matrix_market(&mm[..]).unwrap();
    assert_eq!(from_el, from_mm);
}
