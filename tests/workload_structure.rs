//! Structural validation of the workload suite: each family must actually
//! have the property that makes it a faithful stand-in for its Table 1 rows
//! (connectivity, degree shape, community strength) — these are the
//! premises the reproduction's conclusions rest on.

use community_gpu::graph::{component_stats, degree_stats, modularity};
use community_gpu::prelude::*;
use community_gpu::workloads::Family;

#[test]
fn giant_component_dominates_every_workload() {
    // The paper's collections are dominated by one giant component; a
    // fragmented stand-in would trivialize community detection.
    for spec in WORKLOAD_SUITE {
        let built = spec.build(Scale::Tiny);
        let stats = component_stats(&built.graph);
        let frac = stats.giant_size as f64 / built.graph.num_vertices() as f64;
        assert!(
            frac > 0.85,
            "{}: giant component covers only {:.0}% of vertices",
            spec.name,
            100.0 * frac
        );
    }
}

#[test]
fn degree_shapes_match_families() {
    for spec in WORKLOAD_SUITE {
        let built = spec.build(Scale::Tiny);
        let s = degree_stats(&built.graph);
        match spec.family {
            Family::Road => {
                assert!(s.max_degree <= 10, "{}: road max degree {}", spec.name, s.max_degree);
                assert!(s.avg_degree < 9.0, "{}: road avg degree {}", spec.name, s.avg_degree);
            }
            Family::Mesh | Family::Kkt => {
                // Uniform degrees: max within a small factor of the average.
                assert!(
                    (s.max_degree as f64) < 4.0 * s.avg_degree + 8.0,
                    "{}: mesh/KKT should be uniform (max {} avg {:.1})",
                    spec.name,
                    s.max_degree,
                    s.avg_degree
                );
            }
            Family::Social | Family::Web | Family::Collaboration => {
                // At Tiny scale the LFR degree cap (n/20) compresses the
                // tail on the densest collaboration configs; still require a
                // clear spread. Larger scales restore the full tail.
                assert!(
                    s.max_degree as f64 > 1.5 * s.avg_degree,
                    "{}: expected a degree tail (max {} avg {:.1})",
                    spec.name,
                    s.max_degree,
                    s.avg_degree
                );
            }
            Family::Geometric | Family::Clustered => {
                assert!(s.avg_degree > 3.0, "{}: too sparse", spec.name);
            }
        }
    }
}

#[test]
fn ground_truths_are_strong_where_provided() {
    for spec in WORKLOAD_SUITE {
        let built = spec.build(Scale::Tiny);
        if let Some(truth) = &built.truth {
            let q = modularity(&built.graph, truth);
            assert!(q > 0.45, "{}: planted structure too weak (Q = {q:.3})", spec.name);
        }
    }
}

#[test]
fn suite_covers_all_families() {
    for family in Family::ALL {
        assert!(
            WORKLOAD_SUITE.iter().any(|w| w.family == family),
            "no workload for family {family:?}"
        );
    }
    // And the suite is a meaningful fraction of the paper's 55 graphs.
    assert!(WORKLOAD_SUITE.len() >= 20);
}
