//! Property-based tests of the core invariants, on arbitrary small graphs:
//! modularity bounds, gain-vs-recompute agreement, contraction invariance,
//! delta apply/inverse round-trips and patch-vs-rebuild identity,
//! GPU-vs-reference aggregation, and device collective correctness.

use community_gpu::core::{aggregate_graph, DeviceGraph, GpuLouvainConfig};
use community_gpu::gpusim::Device;
use community_gpu::graph::{
    apply_delta, contract, csr_from_edges, modularity, modularity_gain, Csr, DeltaBatch,
    DeltaBuilder, DeltaError, DeltaOp, GraphBuilder, Partition, VersionedCsr, VertexId,
};
use proptest::prelude::*;

/// An arbitrary small weighted graph: up to `max_n` vertices, arbitrary
/// (possibly duplicate, possibly self-loop) weighted edges.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..100), 1..max_m).prop_map(
            move |edges| {
                let weighted: Vec<(u32, u32, f64)> =
                    edges.into_iter().map(|(u, v, w)| (u, v, w as f64 / 8.0)).collect();
                csr_from_edges(n, &weighted)
            },
        )
    })
}

/// The canonical (`v >= u`) edge list of `g`.
fn existing_edges(g: &Csr) -> Vec<(VertexId, VertexId, f64)> {
    (0..g.num_vertices() as VertexId)
        .flat_map(|u| g.edges(u).filter(move |&(v, _)| v >= u).map(move |(v, w)| (u, v, w)))
        .collect()
}

/// Turns raw proptest picks into a batch that is valid against `g`: each
/// pick deletes or reweights an existing edge, or inserts a fresh one.
/// Picks that would collide (duplicate edge within the batch, insert of a
/// present edge) are skipped, so the result always applies cleanly — the
/// invalid shapes get their own dedicated test.
fn batch_from_picks(g: &Csr, picks: &[(usize, usize, u8, u16)]) -> DeltaBatch {
    let n = g.num_vertices();
    let existing = existing_edges(g);
    let mut b = DeltaBuilder::new(n);
    for &(i, j, action, wraw) in picks {
        let w = wraw as f64 / 16.0 + 0.0625;
        let _ = match action % 3 {
            0 if !existing.is_empty() => {
                let (u, v, _) = existing[i % existing.len()];
                b.delete(u, v).map(|_| ())
            }
            1 if !existing.is_empty() => {
                let (u, v, _) = existing[i % existing.len()];
                b.reweight(u, v, w).map(|_| ())
            }
            _ => {
                let (a, c) = ((i % n) as VertexId, (j % n) as VertexId);
                let (u, v) = if a <= c { (a, c) } else { (c, a) };
                if g.neighbors(u).binary_search(&v).is_ok() {
                    continue;
                }
                b.insert(u, v, w).map(|_| ())
            }
        };
    }
    b.build()
}

/// Raw material for [`batch_from_picks`].
fn arb_picks(max_ops: usize) -> impl Strategy<Value = Vec<(usize, usize, u8, u16)>> {
    proptest::collection::vec(
        (0usize..1_000_000, 0usize..1_000_000, 0u8..=255, 1u16..2048),
        0..max_ops,
    )
}

/// A graph together with an arbitrary community assignment (ids may exceed
/// the compact range and leave holes).
fn arb_graph_and_partition(max_n: usize, max_m: usize) -> impl Strategy<Value = (Csr, Partition)> {
    arb_graph(max_n, max_m).prop_flat_map(|g| {
        let n = g.num_vertices();
        proptest::collection::vec(0..(2 * n as u32), n)
            .prop_map(move |comm| (g.clone(), Partition::from_vec(comm)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn modularity_is_bounded((g, p) in arb_graph_and_partition(20, 60)) {
        let q = modularity(&g, &p);
        prop_assert!((-1.0..=1.0).contains(&q), "Q = {q}");
    }

    #[test]
    fn gain_matches_exact_recompute((g, p) in arb_graph_and_partition(14, 40)) {
        let n = g.num_vertices() as u32;
        for i in 0..n.min(6) {
            for dst in [0u32, 1, n - 1] {
                if dst == p.community_of(i) {
                    continue;
                }
                let gain = modularity_gain(&g, &p, i, dst);
                let before = modularity(&g, &p);
                let mut moved = p.clone();
                moved.assign(i, dst);
                let exact = modularity(&g, &moved) - before;
                prop_assert!(
                    (gain - exact).abs() < 1e-9,
                    "vertex {i} -> {dst}: Eq.2 gain {gain} vs recomputed {exact}"
                );
            }
        }
    }

    #[test]
    fn contraction_preserves_modularity_and_weight((g, p) in arb_graph_and_partition(20, 60)) {
        let q_before = modularity(&g, &p);
        let (cg, _) = contract(&g, &p);
        let q_after = modularity(&cg, &Partition::singleton(cg.num_vertices()));
        prop_assert!((q_before - q_after).abs() < 1e-9, "{q_before} vs {q_after}");
        prop_assert!((g.total_weight_2m() - cg.total_weight_2m()).abs() < 1e-9);
    }

    #[test]
    fn parallel_contraction_matches_sequential((g, p) in arb_graph_and_partition(20, 60)) {
        let (seq, map_seq) = contract(&g, &p);
        let (par, map_par) = community_gpu::baselines::contract_parallel(&g, &p);
        prop_assert_eq!(map_seq.as_slice(), map_par.as_slice());
        prop_assert_eq!(seq.num_vertices(), par.num_vertices());
        prop_assert_eq!(seq.num_arcs(), par.num_arcs());
        for v in 0..seq.num_vertices() as u32 {
            prop_assert_eq!(seq.neighbors(v), par.neighbors(v));
            for (a, b) in seq.edge_weights(v).iter().zip(par.edge_weights(v)) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gpu_aggregation_preserves_modularity((g, p) in arb_graph_and_partition(18, 50)) {
        let dev = Device::k40m();
        // The kernel requires vertex-id community labels (its arrays are
        // |V|-sized, as in Alg. 3); renumbering provides that.
        let (p, _) = p.renumbered();
        let comm: Vec<u32> = p.as_slice().to_vec();
        let out = aggregate_graph(&dev, &DeviceGraph::from_csr(&g), &comm, &GpuLouvainConfig::paper_default()).unwrap();
        let cg = out.graph.to_csr();
        let q_before = modularity(&g, &p);
        let q_after = modularity(&cg, &Partition::singleton(cg.num_vertices()));
        prop_assert!((q_before - q_after).abs() < 1e-9, "{q_before} vs {q_after}");
        // Weight conservation through the kernel pipeline.
        prop_assert!((g.total_weight_2m() - cg.total_weight_2m()).abs() < 1e-9);
        // The vertex map covers the new vertex range.
        for v in 0..g.num_vertices() {
            prop_assert!((out.vertex_map[v] as usize) < cg.num_vertices());
        }
    }

    #[test]
    fn gpu_full_run_invariants(g in arb_graph(16, 40)) {
        let dev = Device::k40m();
        let res = louvain(&dev, &g);
        // Reported modularity equals from-scratch modularity and is at least
        // the singleton baseline.
        let q = modularity(&g, &res.partition);
        prop_assert!((q - res.modularity).abs() < 1e-9);
        let q0 = modularity(&g, &Partition::singleton(g.num_vertices()));
        prop_assert!(res.modularity >= q0 - 1e-9, "Q {} below singleton {}", res.modularity, q0);
    }

    #[test]
    fn delta_apply_then_inverse_restores_the_csr(g in arb_graph(20, 60), picks in arb_picks(12)) {
        let batch = batch_from_picks(&g, &picks);
        let inv = batch.inverse(&g).expect("a valid batch has an inverse");
        let (patched, touched) = apply_delta(&g, &batch).expect("valid batch applies");
        prop_assert_eq!(&touched, &batch.touched_vertices());
        let (restored, _) = apply_delta(&patched, &inv).expect("inverse applies to the patched graph");
        prop_assert_eq!(restored.offsets(), g.offsets());
        prop_assert_eq!(restored.targets(), g.targets());
        let restored_bits: Vec<u64> = restored.weights().iter().map(|w| w.to_bits()).collect();
        let base_bits: Vec<u64> = g.weights().iter().map(|w| w.to_bits()).collect();
        prop_assert_eq!(restored_bits, base_bits, "weights restored bit-for-bit");
    }

    #[test]
    fn delta_patch_path_matches_full_rebuild(g in arb_graph(20, 60), picks in arb_picks(12)) {
        let batch = batch_from_picks(&g, &picks);
        let (patched, _) = apply_delta(&g, &batch).expect("valid batch applies");

        // Oracle: rebuild the post-delta graph from the edge list through
        // the ordinary builder. Patch-path output must be bit-identical.
        let replaced: std::collections::HashSet<(VertexId, VertexId)> = batch
            .ops()
            .iter()
            .filter(|op| !matches!(op, DeltaOp::Insert { .. }))
            .map(|op| op.endpoints())
            .collect();
        let mut b = GraphBuilder::new(g.num_vertices());
        for (u, v, w) in existing_edges(&g) {
            if !replaced.contains(&(u, v)) {
                b.add_edge(u, v, w);
            }
        }
        for op in batch.ops() {
            match *op {
                DeltaOp::Insert { u, v, w }
                | DeltaOp::Reweight { u, v, w } => b.add_edge(u, v, w),
                DeltaOp::Delete { .. } => {}
            }
        }
        let rebuilt = b.build();
        prop_assert_eq!(patched.offsets(), rebuilt.offsets());
        prop_assert_eq!(patched.targets(), rebuilt.targets());
        let patched_bits: Vec<u64> = patched.weights().iter().map(|w| w.to_bits()).collect();
        let rebuilt_bits: Vec<u64> = rebuilt.weights().iter().map(|w| w.to_bits()).collect();
        prop_assert_eq!(patched_bits, rebuilt_bits, "patch path is bit-identical to a rebuild");

        // VersionedCsr lands on the same graph whichever path its churn
        // threshold selects, and records which one ran.
        let mut vg = VersionedCsr::new(g.clone());
        let applied = vg.apply(&batch).expect("valid batch applies");
        let churn = batch.len() as f64 / (g.num_edges().max(1) as f64);
        prop_assert_eq!(applied.rebuilt, churn > VersionedCsr::REBUILD_CHURN);
        prop_assert_eq!(vg.graph(), &patched);
        prop_assert_eq!(vg.version(), 1);
    }

    #[test]
    fn delta_misuse_surfaces_typed_errors(g in arb_graph(16, 40)) {
        let n = g.num_vertices();

        // Builder-level: out-of-range vertices, non-positive / non-finite
        // weights, and two ops addressing one edge.
        let mut b = DeltaBuilder::new(n);
        prop_assert_eq!(
            b.insert(0, n as VertexId, 1.0).unwrap_err(),
            DeltaError::VertexOutOfRange { vertex: n as VertexId, num_vertices: n }
        );
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            prop_assert!(matches!(b.insert(0, 1, w).unwrap_err(), DeltaError::BadWeight { .. }));
        }
        let mut b = DeltaBuilder::new(n);
        b.reweight(1, 0, 2.0).unwrap(); // canonicalized to {0, 1}
        prop_assert_eq!(b.delete(0, 1).unwrap_err(), DeltaError::DuplicateOp { u: 0, v: 1 });

        // Apply-level: inserting a present edge, touching an absent one.
        // `inverse` must make the same judgement as `apply_delta`.
        if let Some(&(u, v, _)) = existing_edges(&g).first() {
            let mut b = DeltaBuilder::new(n);
            b.insert(u, v, 1.0).unwrap();
            let batch = b.build();
            prop_assert_eq!(apply_delta(&g, &batch).unwrap_err(), DeltaError::DuplicateInsert { u, v });
            prop_assert_eq!(batch.inverse(&g).unwrap_err(), DeltaError::DuplicateInsert { u, v });
        }
        let absent = (0..n as VertexId)
            .flat_map(|u| (u..n as VertexId).map(move |v| (u, v)))
            .find(|&(u, v)| g.neighbors(u).binary_search(&v).is_err());
        if let Some((u, v)) = absent {
            let mut b = DeltaBuilder::new(n);
            b.delete(u, v).unwrap();
            let batch = b.build();
            prop_assert_eq!(apply_delta(&g, &batch).unwrap_err(), DeltaError::MissingEdge { u, v });
            prop_assert_eq!(batch.inverse(&g).unwrap_err(), DeltaError::MissingEdge { u, v });
            // A failed apply leaves a VersionedCsr exactly where it was.
            let mut vg = VersionedCsr::new(g.clone());
            prop_assert!(vg.apply(&batch).is_err());
            prop_assert_eq!(vg.version(), 0);
            prop_assert_eq!(vg.graph(), &g);
        }

        // A batch built for a different vertex count is rejected outright,
        // even when empty.
        let foreign = DeltaBuilder::new(n + 1).build();
        prop_assert!(matches!(
            apply_delta(&g, &foreign).unwrap_err(),
            DeltaError::VertexOutOfRange { .. }
        ));
    }

    #[test]
    fn device_scan_matches_reference(v in proptest::collection::vec(0usize..1000, 0..500)) {
        let dev = Device::k40m();
        let mut scanned = v.clone();
        let total = dev.exclusive_scan_usize(&mut scanned);
        let mut acc = 0usize;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn device_partition_is_stable_split(v in proptest::collection::vec(0u32..100, 0..300)) {
        let dev = Device::k40m();
        let (parted, count) = dev.partition(&v, |&x| x % 2 == 0);
        let evens: Vec<u32> = v.iter().copied().filter(|x| x % 2 == 0).collect();
        let odds: Vec<u32> = v.iter().copied().filter(|x| x % 2 == 1).collect();
        prop_assert_eq!(count, evens.len());
        prop_assert_eq!(&parted[..count], &evens[..]);
        prop_assert_eq!(&parted[count..], &odds[..]);
    }
}

fn louvain(dev: &Device, g: &Csr) -> community_gpu::core::GpuLouvainResult {
    community_gpu::core::louvain_gpu(dev, g, &GpuLouvainConfig::paper_default()).unwrap()
}
