//! Property-based tests of the core invariants, on arbitrary small graphs:
//! modularity bounds, gain-vs-recompute agreement, contraction invariance,
//! GPU-vs-reference aggregation, and device collective correctness.

use community_gpu::core::{aggregate_graph, DeviceGraph, GpuLouvainConfig};
use community_gpu::gpusim::Device;
use community_gpu::graph::{contract, csr_from_edges, modularity, modularity_gain, Csr, Partition};
use proptest::prelude::*;

/// An arbitrary small weighted graph: up to `max_n` vertices, arbitrary
/// (possibly duplicate, possibly self-loop) weighted edges.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..100), 1..max_m).prop_map(
            move |edges| {
                let weighted: Vec<(u32, u32, f64)> =
                    edges.into_iter().map(|(u, v, w)| (u, v, w as f64 / 8.0)).collect();
                csr_from_edges(n, &weighted)
            },
        )
    })
}

/// A graph together with an arbitrary community assignment (ids may exceed
/// the compact range and leave holes).
fn arb_graph_and_partition(max_n: usize, max_m: usize) -> impl Strategy<Value = (Csr, Partition)> {
    arb_graph(max_n, max_m).prop_flat_map(|g| {
        let n = g.num_vertices();
        proptest::collection::vec(0..(2 * n as u32), n)
            .prop_map(move |comm| (g.clone(), Partition::from_vec(comm)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn modularity_is_bounded((g, p) in arb_graph_and_partition(20, 60)) {
        let q = modularity(&g, &p);
        prop_assert!((-1.0..=1.0).contains(&q), "Q = {q}");
    }

    #[test]
    fn gain_matches_exact_recompute((g, p) in arb_graph_and_partition(14, 40)) {
        let n = g.num_vertices() as u32;
        for i in 0..n.min(6) {
            for dst in [0u32, 1, n - 1] {
                if dst == p.community_of(i) {
                    continue;
                }
                let gain = modularity_gain(&g, &p, i, dst);
                let before = modularity(&g, &p);
                let mut moved = p.clone();
                moved.assign(i, dst);
                let exact = modularity(&g, &moved) - before;
                prop_assert!(
                    (gain - exact).abs() < 1e-9,
                    "vertex {i} -> {dst}: Eq.2 gain {gain} vs recomputed {exact}"
                );
            }
        }
    }

    #[test]
    fn contraction_preserves_modularity_and_weight((g, p) in arb_graph_and_partition(20, 60)) {
        let q_before = modularity(&g, &p);
        let (cg, _) = contract(&g, &p);
        let q_after = modularity(&cg, &Partition::singleton(cg.num_vertices()));
        prop_assert!((q_before - q_after).abs() < 1e-9, "{q_before} vs {q_after}");
        prop_assert!((g.total_weight_2m() - cg.total_weight_2m()).abs() < 1e-9);
    }

    #[test]
    fn parallel_contraction_matches_sequential((g, p) in arb_graph_and_partition(20, 60)) {
        let (seq, map_seq) = contract(&g, &p);
        let (par, map_par) = community_gpu::baselines::contract_parallel(&g, &p);
        prop_assert_eq!(map_seq.as_slice(), map_par.as_slice());
        prop_assert_eq!(seq.num_vertices(), par.num_vertices());
        prop_assert_eq!(seq.num_arcs(), par.num_arcs());
        for v in 0..seq.num_vertices() as u32 {
            prop_assert_eq!(seq.neighbors(v), par.neighbors(v));
            for (a, b) in seq.edge_weights(v).iter().zip(par.edge_weights(v)) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gpu_aggregation_preserves_modularity((g, p) in arb_graph_and_partition(18, 50)) {
        let dev = Device::k40m();
        // The kernel requires vertex-id community labels (its arrays are
        // |V|-sized, as in Alg. 3); renumbering provides that.
        let (p, _) = p.renumbered();
        let comm: Vec<u32> = p.as_slice().to_vec();
        let out = aggregate_graph(&dev, &DeviceGraph::from_csr(&g), &comm, &GpuLouvainConfig::paper_default()).unwrap();
        let cg = out.graph.to_csr();
        let q_before = modularity(&g, &p);
        let q_after = modularity(&cg, &Partition::singleton(cg.num_vertices()));
        prop_assert!((q_before - q_after).abs() < 1e-9, "{q_before} vs {q_after}");
        // Weight conservation through the kernel pipeline.
        prop_assert!((g.total_weight_2m() - cg.total_weight_2m()).abs() < 1e-9);
        // The vertex map covers the new vertex range.
        for v in 0..g.num_vertices() {
            prop_assert!((out.vertex_map[v] as usize) < cg.num_vertices());
        }
    }

    #[test]
    fn gpu_full_run_invariants(g in arb_graph(16, 40)) {
        let dev = Device::k40m();
        let res = louvain(&dev, &g);
        // Reported modularity equals from-scratch modularity and is at least
        // the singleton baseline.
        let q = modularity(&g, &res.partition);
        prop_assert!((q - res.modularity).abs() < 1e-9);
        let q0 = modularity(&g, &Partition::singleton(g.num_vertices()));
        prop_assert!(res.modularity >= q0 - 1e-9, "Q {} below singleton {}", res.modularity, q0);
    }

    #[test]
    fn device_scan_matches_reference(v in proptest::collection::vec(0usize..1000, 0..500)) {
        let dev = Device::k40m();
        let mut scanned = v.clone();
        let total = dev.exclusive_scan_usize(&mut scanned);
        let mut acc = 0usize;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn device_partition_is_stable_split(v in proptest::collection::vec(0u32..100, 0..300)) {
        let dev = Device::k40m();
        let (parted, count) = dev.partition(&v, |&x| x % 2 == 0);
        let evens: Vec<u32> = v.iter().copied().filter(|x| x % 2 == 0).collect();
        let odds: Vec<u32> = v.iter().copied().filter(|x| x % 2 == 1).collect();
        prop_assert_eq!(count, evens.len());
        prop_assert_eq!(&parted[..count], &evens[..]);
        prop_assert_eq!(&parted[count..], &odds[..]);
    }
}

fn louvain(dev: &Device, g: &Csr) -> community_gpu::core::GpuLouvainResult {
    community_gpu::core::louvain_gpu(dev, g, &GpuLouvainConfig::paper_default()).unwrap()
}
