//! Dendrogram / multilevel-hierarchy integration tests: the clustering
//! hierarchy the method computes must be internally consistent at every
//! level.

use community_gpu::prelude::*;

#[test]
fn hierarchy_levels_refine_monotonically() {
    let built = workload_by_name("road-usa").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let res = louvain_gpu(&Device::k40m(), g, &GpuLouvainConfig::paper_default()).unwrap();
    assert!(res.dendrogram.num_levels() >= 2, "road networks need several stages");

    let mut last_k = usize::MAX;
    let mut last_q = f64::NEG_INFINITY;
    for depth in 1..=res.dendrogram.num_levels() {
        let p = res.dendrogram.flatten_to(depth);
        let k = p.num_communities();
        let q = modularity(g, &p);
        assert!(k <= last_k, "level {depth}: communities must coarsen ({k} > {last_k})");
        assert!(q >= last_q - 1e-9, "level {depth}: modularity decreased ({q:.4} < {last_q:.4})");
        last_k = k;
        last_q = q;
    }
    assert!((last_q - res.modularity).abs() < 1e-9);
}

#[test]
fn each_level_is_a_coarsening_of_the_previous() {
    let built = workload_by_name("rgg-sparse").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let res = louvain_gpu(&Device::k40m(), g, &GpuLouvainConfig::paper_default()).unwrap();
    for depth in 2..=res.dendrogram.num_levels() {
        let fine = res.dendrogram.flatten_to(depth - 1);
        let coarse = res.dendrogram.flatten_to(depth);
        // Two vertices together at the fine level stay together at the
        // coarse level.
        for v in 0..g.num_vertices() as u32 {
            for &u in g.neighbors(v) {
                if fine.community_of(v) == fine.community_of(u) {
                    assert_eq!(
                        coarse.community_of(v),
                        coarse.community_of(u),
                        "coarsening split a community at depth {depth}"
                    );
                }
            }
        }
    }
}

#[test]
fn sequential_hierarchy_has_same_properties() {
    let built = workload_by_name("com-amazon").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let res = louvain_sequential(g, &SequentialConfig::original());
    let flat = res.dendrogram.flatten();
    assert_eq!(flat.as_slice(), res.partition.as_slice());
    assert!((modularity(g, &flat) - res.modularity).abs() < 1e-9);
}

#[test]
fn stage_stats_are_consistent_with_hierarchy() {
    let built = workload_by_name("europe-osm").unwrap().build(Scale::Tiny);
    let g = &built.graph;
    let res = louvain_gpu(&Device::k40m(), g, &GpuLouvainConfig::paper_default()).unwrap();
    assert_eq!(res.stages.len(), res.dendrogram.num_levels());
    // Stage s+1's vertex count equals the number of communities of level s.
    for s in 1..res.stages.len() {
        let prev_level_comms = res.dendrogram.levels()[s - 1].num_communities();
        assert_eq!(res.stages[s].num_vertices, prev_level_comms, "stage {s}");
    }
    assert_eq!(res.stages[0].num_vertices, g.num_vertices());
}
