//! Documented pathologies and edge cases of synchronous parallel Louvain —
//! the failure modes the paper's vertex-movement rules (Section 4, citing
//! Lu et al.) exist to contain.

use community_gpu::graph::gen::{grid_2d, perturbed_grid_2d, star, GridStencil};
use community_gpu::prelude::*;

/// On a *perfect* lattice every interior vertex shares one degree bucket and
/// one tie-break pattern, so a fully synchronous sweep moves everyone "up"
/// at once, producing label chains. Whether the phase then recovers is
/// fragile (it depends on the sign of a near-zero modularity delta), which
/// is why the workload suite perturbs its lattices like real meshes. What
/// the implementation *guarantees* — via the best-labeling guard in the
/// optimization phase — is that even the perfect lattice never ends below
/// its starting point, and that mild irregularity restores full quality.
#[test]
fn perfect_lattice_is_contained_and_perturbation_restores_quality() {
    let perfect = grid_2d(40, 40, GridStencil::VonNeumann);
    let res = louvain_gpu(&Device::k40m(), &perfect, &GpuLouvainConfig::paper_default()).unwrap();
    let q0 = modularity(&perfect, &Partition::singleton(perfect.num_vertices()));
    assert!(
        res.modularity >= q0,
        "GPU result {:.4} fell below the singleton baseline {q0:.4}",
        res.modularity
    );

    // A few percent of irregularity restores normal behaviour.
    let perturbed = perturbed_grid_2d(40, 40, GridStencil::VonNeumann, 0.93, 5);
    let res_p =
        louvain_gpu(&Device::k40m(), &perturbed, &GpuLouvainConfig::paper_default()).unwrap();
    let seq_p = louvain_sequential(&perturbed, &SequentialConfig::original());
    assert!(
        res_p.modularity > 0.9 * seq_p.modularity,
        "perturbed lattice should behave normally (GPU {:.4} vs seq {:.4})",
        res_p.modularity,
        seq_p.modularity
    );
}

/// The singleton ordering rule (a singleton may only join a singleton with a
/// smaller id) keeps neighboring singletons from swapping communities
/// forever; a star is the classic trigger.
#[test]
fn star_converges_quickly_with_singleton_rule() {
    let g = star(256);
    let res = louvain_gpu(&Device::k40m(), &g, &GpuLouvainConfig::paper_default()).unwrap();
    let total_iters: usize = res.stages.iter().map(|s| s.iterations).sum();
    assert!(total_iters < 40, "star took {total_iters} iterations — oscillation?");
    assert!(res.partition.num_communities() <= 2);
}

/// Degenerate inputs must not crash or hang.
#[test]
fn degenerate_inputs() {
    let dev = Device::k40m();
    let cfg = GpuLouvainConfig::paper_default();

    // Empty graph.
    let empty = Csr::empty(0);
    let r = louvain_gpu(&dev, &empty, &cfg).unwrap();
    assert_eq!(r.partition.len(), 0);

    // Isolated vertices only.
    let isolated = Csr::empty(17);
    let r = louvain_gpu(&dev, &isolated, &cfg).unwrap();
    assert_eq!(r.partition.num_communities(), 17);
    assert_eq!(r.modularity, 0.0);

    // A single self-loop.
    let loop_only = community_gpu::graph::csr_from_edges(3, &[(1, 1, 5.0)]);
    let r = louvain_gpu(&dev, &loop_only, &cfg).unwrap();
    assert_eq!(r.partition.num_communities(), 3);

    // Two vertices, one edge.
    let pair = community_gpu::graph::csr_from_unit_edges(2, &[(0, 1)]);
    let r = louvain_gpu(&dev, &pair, &cfg).unwrap();
    assert!(r.modularity.abs() < 1e-9); // one community, Q = 0
}

/// Mixed extreme weights exercise the f64 accumulation paths.
#[test]
fn extreme_weight_ratios() {
    let g = community_gpu::graph::csr_from_edges(
        6,
        &[(0, 1, 1e-6), (1, 2, 1e6), (2, 3, 1.0), (3, 4, 1e-6), (4, 5, 1e6), (5, 0, 1.0)],
    );
    let res = louvain_gpu(&Device::k40m(), &g, &GpuLouvainConfig::paper_default()).unwrap();
    // The two heavy edges dominate: their endpoints must pair up.
    assert_eq!(res.partition.community_of(1), res.partition.community_of(2));
    assert_eq!(res.partition.community_of(4), res.partition.community_of(5));
    let q = modularity(&g, &res.partition);
    assert!((q - res.modularity).abs() < 1e-9);
}
