//! Fault-injection integration tests: the acceptance criteria of the
//! fault-tolerance work.
//!
//! With a seeded [`FaultPlan`] on the device, runs must (1) replay the
//! identical fault schedule and produce the identical result for the same
//! seed, (2) complete despite injected kernel aborts, watchdog timeouts, and
//! bit flips, with modularity close to the fault-free run, and (3) leave
//! fault-free behavior bitwise unchanged. Degenerate inputs must flow through
//! both public entry points without panicking.

use community_gpu::core::UpdateStrategy;
use community_gpu::gpusim::{FaultPlan, Profile};
use community_gpu::prelude::*;

fn plan(seed: u64) -> FaultPlan {
    // Per-launch rates: a stage makes on the order of a hundred launches, so
    // even sub-percent rates fail most stage attempts at least once per run.
    FaultPlan::seeded(seed).with_abort_rate(0.01).with_stuck_rate(0.005).with_bitflip_rate(0.001)
}

/// Paper-default algorithm config with a roomier retry budget — the injected
/// rates above make a single stage attempt fail more often than not.
fn cfg() -> GpuLouvainConfig {
    let mut cfg = GpuLouvainConfig::paper_default();
    cfg.retry.max_attempts = 10;
    cfg
}

fn faulty_device(seed: u64) -> Device {
    // Fault injection lives in the instrumented launch path, so these tests
    // pin the profile — the env-var default may be `Fast`, which rejects
    // active fault plans.
    Device::new(
        DeviceConfig::tesla_k40m().with_profile(Profile::Instrumented).with_fault_plan(plan(seed)),
    )
}

fn test_graph() -> Csr {
    community_gpu::graph::gen::planted_partition(6, 30, 0.4, 0.02, 5).graph
}

#[test]
fn same_seed_same_fault_schedule_same_result() {
    let g = test_graph();
    let cfg = cfg();
    let (da, db) = (faulty_device(42), faulty_device(42));
    let a = louvain_gpu(&da, &g, &cfg).expect("run a");
    let b = louvain_gpu(&db, &g, &cfg).expect("run b");
    assert_eq!(a.partition.as_slice(), b.partition.as_slice(), "partitions diverge");
    assert_eq!(a.modularity, b.modularity);
    let (fa, fb) = (da.fault_stats(), db.fault_stats());
    assert_eq!(fa, fb, "fault schedules diverge: {fa:?} vs {fb:?}");
    assert!(fa.injected() > 0, "the plan should actually inject faults");
}

#[test]
fn incremental_modularity_resyncs_under_faults() {
    // resync_interval = 1 checks the incrementally-tracked Q against a full
    // device recompute every iteration (within 1e-9, else the stage fails
    // and retries) — here with faults injected, under both update
    // strategies and both pruning settings. Completion means every resync
    // on the surviving attempts agreed.
    let g = test_graph();
    for strategy in [UpdateStrategy::PerBucket, UpdateStrategy::Relaxed] {
        for pruning in [false, true] {
            let mut cfg = cfg();
            cfg.update_strategy = strategy;
            cfg.pruning = pruning;
            cfg.resync_interval = 1;
            let dev = faulty_device(17);
            let out = louvain_gpu(&dev, &g, &cfg)
                .unwrap_or_else(|e| panic!("{strategy:?} pruning={pruning}: {e}"));
            assert!(out.modularity > 0.0, "{strategy:?} pruning={pruning}");
        }
    }
}

#[test]
fn different_seeds_draw_different_schedules() {
    let g = test_graph();
    let cfg = cfg();
    let (da, db) = (faulty_device(1), faulty_device(2));
    louvain_gpu(&da, &g, &cfg).expect("seed 1");
    louvain_gpu(&db, &g, &cfg).expect("seed 2");
    assert_ne!(da.fault_stats(), db.fault_stats());
}

#[test]
fn completes_under_faults_with_modularity_within_5_percent() {
    let g = test_graph();
    let cfg = cfg();
    let clean = louvain_gpu(&Device::k40m(), &g, &cfg).expect("fault-free run");
    // Not every seed draws a fault on a run this short; scan a range and
    // require that a healthy number of schedules actually injected.
    let mut injected_runs = 0;
    for seed in 1u64..=12 {
        let dev = faulty_device(seed);
        let res = louvain_gpu(&dev, &g, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed} failed to recover: {e}"));
        if dev.fault_stats().injected() > 0 {
            injected_runs += 1;
        }
        assert!(
            res.modularity >= 0.95 * clean.modularity,
            "seed {seed}: faulty Q {:.4} below 95% of clean Q {:.4}",
            res.modularity,
            clean.modularity
        );
    }
    assert!(injected_runs >= 3, "only {injected_runs}/12 seeds injected faults");
}

#[test]
fn recoveries_are_counted() {
    // Launch faults only (no bit flips): every transient failure must be
    // detected, and the run only succeeds if each one was later recovered.
    let g = test_graph();
    let cfg = cfg();
    let p = FaultPlan::seeded(7).with_abort_rate(0.01).with_stuck_rate(0.005);
    let dev = Device::new(
        DeviceConfig::tesla_k40m().with_profile(Profile::Instrumented).with_fault_plan(p),
    );
    louvain_gpu(&dev, &g, &cfg).expect("should recover");
    let stats = dev.fault_stats();
    assert!(stats.injected() > 0);
    assert!(stats.detected > 0, "injected faults should be detected: {stats:?}");
    assert!(stats.recovered > 0, "a successful run must have recovered: {stats:?}");
}

#[test]
fn fault_off_device_reports_zero_faults() {
    let g = test_graph();
    let dev = Device::k40m();
    let res = louvain_gpu(&dev, &g, &GpuLouvainConfig::paper_default()).unwrap();
    let stats = dev.fault_stats();
    assert_eq!(stats.injected(), 0);
    assert_eq!(stats.detected, 0);
    assert_eq!(stats.recovered, 0);
    assert!(res.modularity > 0.0);
}

#[test]
fn multi_gpu_completes_under_faults_and_reports_recovery() {
    let g = community_gpu::graph::gen::planted_partition(8, 32, 0.4, 0.01, 9).graph;
    let clean = louvain_multi_gpu(&g, &MultiGpuConfig::k40m(4)).expect("clean run");
    let mut cfg = MultiGpuConfig::k40m(4);
    cfg.gpu.retry.max_attempts = 10;
    cfg.device = cfg.device.with_profile(Profile::Instrumented).with_fault_plan(plan(11));
    let res = louvain_multi_gpu(&g, &cfg).expect("faulty run should complete");
    assert!(res.faults.injected() > 0, "devices should inject faults");
    assert!(
        res.modularity >= 0.95 * clean.modularity,
        "faulty multi-GPU Q {:.4} below 95% of clean Q {:.4}",
        res.modularity,
        clean.modularity
    );
    assert!(clean.recovery.is_empty());
}

#[test]
fn multi_gpu_fault_schedule_is_reproducible() {
    let g = test_graph();
    let mut cfg = MultiGpuConfig::k40m(3);
    cfg.gpu.retry.max_attempts = 10;
    cfg.device = cfg.device.with_profile(Profile::Instrumented).with_fault_plan(plan(23));
    let a = louvain_multi_gpu(&g, &cfg).expect("run a");
    let b = louvain_multi_gpu(&g, &cfg).expect("run b");
    assert_eq!(a.partition.as_slice(), b.partition.as_slice());
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.recovery, b.recovery);
}

#[test]
fn multi_gpu_survives_a_hopeless_device_via_fallback() {
    // Abort every launch: no device can ever finish, so every block and the
    // refinement must degrade to the sequential baseline — and still return
    // a sound clustering.
    let g = test_graph();
    let mut cfg = MultiGpuConfig::k40m(2);
    cfg.device = cfg
        .device
        .with_profile(Profile::Instrumented)
        .with_fault_plan(FaultPlan::seeded(5).with_abort_rate(1.0));
    let res = louvain_multi_gpu(&g, &cfg).expect("sequential fallback should save the run");
    assert!(res.modularity > 0.0);
    assert!(
        res.recovery.iter().any(|a| matches!(a, RecoveryAction::SequentialFallback { .. })),
        "expected sequential fallbacks, got {:?}",
        res.recovery
    );
    // With fallback disabled the same run must fail loudly, not hang or
    // panic.
    cfg.sequential_fallback = false;
    let err = louvain_multi_gpu(&g, &cfg).expect_err("no fallback, no result");
    assert!(matches!(err, GpuLouvainError::StageFailed { .. }), "got {err:?}");
}

#[test]
fn exhausted_retries_surface_as_stage_failed() {
    let g = test_graph();
    let dev = Device::new(
        DeviceConfig::tesla_k40m()
            .with_profile(Profile::Instrumented)
            .with_fault_plan(FaultPlan::seeded(1).with_abort_rate(1.0)),
    );
    let err =
        louvain_gpu(&dev, &g, &GpuLouvainConfig::paper_default()).expect_err("every launch aborts");
    match err {
        GpuLouvainError::StageFailed { stage, attempts, cause } => {
            assert_eq!(stage, 0);
            assert_eq!(attempts, GpuLouvainConfig::paper_default().retry.max_attempts);
            assert!(matches!(*cause, GpuLouvainError::Launch(_)), "cause {cause:?}");
        }
        other => panic!("expected StageFailed, got {other:?}"),
    }
    let stats = dev.fault_stats();
    assert!(stats.detected >= stats.recovered);
}

// ---- degenerate inputs through both public entry points -------------------

fn degenerate_graphs() -> Vec<(&'static str, Csr)> {
    let mut isolated = GraphBuilder::new(5);
    isolated.add_unit_edge(0, 1); // vertices 2..5 isolated
    let mut self_loops = GraphBuilder::new(3);
    self_loops.add_edge(0, 0, 2.0);
    self_loops.add_edge(1, 1, 1.0);
    self_loops.add_edge(2, 2, 3.5);
    // GraphBuilder rejects non-positive weights, so a zero-weight graph is
    // assembled from raw parts (total weight 2m = 0 exercises the division
    // guards).
    let zero_weight =
        Csr::from_parts(vec![0, 1, 2, 3, 4], vec![1, 0, 3, 2], vec![0.0, 0.0, 0.0, 0.0]);
    vec![
        ("empty", Csr::empty(0)),
        ("single vertex", Csr::empty(1)),
        ("edgeless", Csr::empty(6)),
        ("isolated vertices", isolated.build()),
        ("self-loops only", self_loops.build()),
        ("zero-weight edges", zero_weight),
    ]
}

#[test]
fn degenerate_inputs_never_panic_single_gpu() {
    for (name, g) in degenerate_graphs() {
        for seed in [0u64, 9] {
            let dev = if seed == 0 { Device::k40m() } else { faulty_device(seed) };
            let res = louvain_gpu(&dev, &g, &cfg())
                .unwrap_or_else(|e| panic!("{name} (seed {seed}): {e}"));
            assert_eq!(res.partition.len(), g.num_vertices(), "{name}");
            assert!(res.modularity.is_finite(), "{name}");
        }
    }
}

#[test]
fn degenerate_inputs_never_panic_multi_gpu() {
    for (name, g) in degenerate_graphs() {
        for devices in [1usize, 3] {
            let res = louvain_multi_gpu(&g, &MultiGpuConfig::k40m(devices))
                .unwrap_or_else(|e| panic!("{name} ({devices} devices): {e}"));
            assert_eq!(res.partition.len(), g.num_vertices(), "{name}");
            assert!(res.modularity.is_finite(), "{name}");
        }
    }
}
